package dist

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"wavelethist/internal/core"
	"wavelethist/internal/hdfs"
)

func checkpointDataset(t testing.TB) (DatasetSpec, *hdfs.File) {
	t.Helper()
	spec := DatasetSpec{Kind: "zipf", Domain: 1 << 10, Records: 1 << 13, Alpha: 1.1, Seed: 5, ChunkSize: 4 << 10}.Normalize()
	file, _, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return spec, file
}

func newCheckpointCluster(n int, dir string) (*Coordinator, *Loopback) {
	lb := NewLoopback()
	lb.Fallback = NewHTTPTransport()
	c := NewCoordinator(lb, Config{SplitsPerCall: 2, CheckpointDir: dir})
	for i := 0; i < n; i++ {
		w := NewWorker(fmt.Sprintf("ck-%d", i), 2)
		addr := lb.Add(w)
		c.Register(w.ID(), addr, w.Capacity())
	}
	return c, lb
}

// TestCheckpointResume kills the whole fleet on the first round-3
// assignment of a distributed H-WTopk build — the coordinator "dies" at
// the round-2 barrier with its checkpoint on disk — then resumes on a
// fresh coordinator and fleet. The resumed build must restore rounds 1–2
// from the checkpoint (zero RPCs, Restored flag) and produce a result
// bit-identical to an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	spec, file := checkpointDataset(t)
	p := core.Params{U: 1 << 10, K: 25, Seed: 7}
	ctx := context.Background()
	dir := t.TempDir()

	// Reference: an uninterrupted build (no checkpointing involved).
	ref, _ := NewLoopbackCluster(3, 2, Config{SplitsPerCall: 2})
	want, wantStats, err := ref.Build(ctx, spec, file, core.MethodHWTopk, p)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: every worker crashes when round 3 reaches it, so
	// the build fails after the round-2 barrier was checkpointed.
	c1, lb1 := newCheckpointCluster(3, dir)
	for i := 0; i < 3; i++ {
		lb1.CrashWhen(LoopbackScheme+fmt.Sprintf("ck-%d", i), func(req *MapRequest) bool {
			return req.Round == 3
		})
	}
	if _, _, err := c1.Build(ctx, spec, file, core.MethodHWTopk, p); err == nil {
		t.Fatal("build survived a fleet-wide round-3 crash")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.wckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want 1 checkpoint file after the crash, have %v (err %v)", files, err)
	}

	// Resume: a new coordinator (new instance, new job IDs) with a fresh
	// fleet restores rounds 1–2 from the checkpoint and runs only round 3.
	c2, _ := newCheckpointCluster(3, dir)
	got, stats, err := c2.Build(ctx, spec, file, core.MethodHWTopk, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rep.Coefs) != len(want.Rep.Coefs) {
		t.Fatalf("coef count: got %d, want %d", len(got.Rep.Coefs), len(want.Rep.Coefs))
	}
	for i := range want.Rep.Coefs {
		if got.Rep.Coefs[i] != want.Rep.Coefs[i] {
			t.Fatalf("coef %d: got %+v, want %+v", i, got.Rep.Coefs[i], want.Rep.Coefs[i])
		}
	}
	if stats.CandidateSetSize != wantStats.CandidateSetSize {
		t.Errorf("candidate set: got %d, want %d", stats.CandidateSetSize, wantStats.CandidateSetSize)
	}
	if len(stats.PerRound) != 3 {
		t.Fatalf("want 3 per-round entries, have %d", len(stats.PerRound))
	}
	for r := 0; r < 2; r++ {
		rs := stats.PerRound[r]
		if !rs.Restored || rs.RPCs != 0 || rs.WireBytes != 0 {
			t.Errorf("round %d should be checkpoint-restored with no RPCs: %+v", r+1, rs)
		}
	}
	r3 := stats.PerRound[2]
	if r3.Restored || r3.RPCs == 0 {
		t.Errorf("round 3 should have run live: %+v", r3)
	}
	// The fresh fleet held no leases, so round 3's owners replayed the
	// earlier rounds' map side locally for every split.
	if r3.ReplayedSplits != stats.Splits {
		t.Errorf("round 3 replayed %d of %d splits", r3.ReplayedSplits, stats.Splits)
	}

	// A completed build removes its checkpoint.
	files, _ = filepath.Glob(filepath.Join(dir, "*.wckpt"))
	if len(files) != 0 {
		t.Errorf("checkpoint not removed after completion: %v", files)
	}
}

// TestCheckpointRoundTrip: the checkpoint codec survives encode → decode,
// and loadCheckpoint rejects mismatched shapes instead of failing builds.
func TestCheckpointRoundTrip(t *testing.T) {
	_, file := checkpointDataset(t)
	p := core.Params{U: 1 << 10, K: 10, Seed: 3}
	parts, err := core.MapSplits(context.Background(), file, "Send-V", p, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ck := &checkpoint{Key: "shape-key", Method: core.MethodHWTopk, Splits: 2, Rounds: [][]core.SplitPartial{parts}}
	dir := t.TempDir()
	if err := saveCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	got := loadCheckpoint(dir, "shape-key", core.MethodHWTopk, 2, 3)
	if got == nil {
		t.Fatal("checkpoint did not load")
	}
	if got.Method != ck.Method || got.Splits != 2 || len(got.Rounds) != 1 || len(got.Rounds[0]) != 2 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	for i := range parts {
		if len(got.Rounds[0][i].Pairs) != len(parts[i].Pairs) || got.Rounds[0][i].SplitID != parts[i].SplitID {
			t.Fatalf("partial %d mismatch", i)
		}
	}
	if loadCheckpoint(dir, "other-key", core.MethodHWTopk, 2, 3) != nil {
		t.Error("loaded under the wrong key")
	}
	if loadCheckpoint(dir, "shape-key", core.MethodHWTopk, 5, 3) != nil {
		t.Error("loaded with the wrong split count")
	}
	// Corrupt file: treated as no checkpoint.
	path := checkpointPath(dir, "shape-key")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if loadCheckpoint(dir, "shape-key", core.MethodHWTopk, 2, 3) != nil {
		t.Error("loaded a corrupt checkpoint")
	}
}
