package dist

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"

	"wavelethist/internal/core"
)

// Binary wire protocol. PR 2/3 shipped every RPC as JSON, which costs
// ~3.5× the model's bytes on partial-heavy responses (decimal floats,
// base64 payloads, field names). This codec replaces the JSON bodies with
// length-prefixed binary frames:
//
//	offset  size  field
//	0       4     magic "WDF1"
//	4       1     message type (msgMapRequest, ...)
//	5       1     flags (bit 0: payload deflate-compressed)
//	6       4     payload length (little-endian uint32)
//	10      4     uncompressed length (present iff compressed)
//	14/10   n     payload (message body, possibly deflated)
//
// Message bodies use the same little-endian fixed-width scalars as the
// partial codec (internal/core), with uvarint length prefixes for strings,
// byte blobs and lists. Bodies at or above compressMin bytes are deflated
// when that actually shrinks them — partial payloads are highly
// compressible (sorted keys, small-integer floats), which is what pulls
// measured wire bytes down to the modeled communication.
//
// Negotiation is by HTTP Content-Type: a new worker answers in the
// encoding it was asked in (ContentTypeBinary or JSON), and the
// coordinator's HTTPTransport falls back to JSON — stickily, per address —
// when a worker rejects a binary body, so old JSON-only workers keep
// serving in a mixed fleet.

// Content types of the dist protocol.
const (
	ContentTypeBinary = "application/x-wavehist-binary"
	ContentTypeJSON   = "application/json"
)

// DowngradeToJSON is the one negotiation rule both sides of the protocol
// apply after a failed binary attempt: fall back to JSON only when the
// status says "not understood" (400/415 — what a JSON-only peer's
// decoder answers a binary frame with) AND the error body is not itself
// a valid binary frame. A binary-capable peer answers errors with binary
// frames, and downgrading on those would pin the address to the
// ~3.5×-larger JSON encoding over a single bad request. decodesBinary
// reports whether body parses as the expected binary response type.
func DowngradeToJSON(status int, body []byte, decodesBinary func([]byte) bool) bool {
	if status != http.StatusBadRequest && status != http.StatusUnsupportedMediaType {
		return false
	}
	return decodesBinary == nil || !decodesBinary(body)
}

const frameMagic = "WDF1"

const (
	flagDeflate byte = 1 << 0
)

// Frame message types.
const (
	msgMapRequest byte = iota + 1
	msgMapResponse
	msgRegisterRequest
	msgRegisterResponse
	msgHeartbeatRequest
	msgHeartbeatResponse
	msgReleaseRequest
	msgReleaseResponse
	msgReplPullRequest  // replication catch-up pull (replcodec.go)
	msgReplPullResponse //
	msgCheckpoint       // coordinator round-barrier checkpoint (checkpoint.go)
)

const (
	// compressMin is the smallest body worth deflating.
	compressMin = 1 << 10
	// maxFramePayload bounds both the compressed and the declared
	// uncompressed payload size — a corrupt or hostile length prefix must
	// not allocate unbounded memory. It is also the protocol's hard
	// message-size limit: encodeFrame's length field is a uint32, so
	// producers of unbounded payloads must bound them below this
	// (Worker.HandleMap rejects oversize partials with an application
	// error; request sizes are bounded by the serve layer's dataset
	// limits).
	maxFramePayload = 1 << 30
	// maxPartialsPayload leaves frame-header and sibling-field slack
	// below maxFramePayload for a map response's partials blob.
	maxPartialsPayload = maxFramePayload - (1 << 16)
)

var flateWriters = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

// encodeFrame wraps a message body in a length-prefixed frame, deflating
// large bodies when compression wins.
func encodeFrame(msg byte, body []byte) []byte {
	flags := byte(0)
	payload := body
	if len(body) >= compressMin {
		var buf bytes.Buffer
		buf.Grow(len(body) / 2)
		zw := flateWriters.Get().(*flate.Writer)
		zw.Reset(&buf)
		if _, err := zw.Write(body); err == nil && zw.Close() == nil && buf.Len() < len(body) {
			payload = buf.Bytes()
			flags |= flagDeflate
		}
		flateWriters.Put(zw)
	}
	n := 10 + len(payload)
	if flags&flagDeflate != 0 {
		n += 4
	}
	out := make([]byte, 0, n)
	out = append(out, frameMagic...)
	out = append(out, msg, flags)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	if flags&flagDeflate != 0 {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	}
	return append(out, payload...)
}

// decodeFrame validates a frame and returns its (decompressed) body.
func decodeFrame(b []byte, wantMsg byte) ([]byte, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("dist: truncated frame (%d bytes)", len(b))
	}
	if string(b[:4]) != frameMagic {
		return nil, fmt.Errorf("dist: bad frame magic %q", b[:4])
	}
	if b[4] != wantMsg {
		return nil, fmt.Errorf("dist: frame is message type %d, want %d", b[4], wantMsg)
	}
	flags := b[5]
	if flags&^flagDeflate != 0 {
		return nil, fmt.Errorf("dist: unknown frame flags %#x", flags)
	}
	plen := int64(binary.LittleEndian.Uint32(b[6:10]))
	off := 10
	var rawLen int64 = -1
	if flags&flagDeflate != 0 {
		if len(b) < 14 {
			return nil, fmt.Errorf("dist: truncated compressed frame header")
		}
		rawLen = int64(binary.LittleEndian.Uint32(b[10:14]))
		off = 14
	}
	if plen > maxFramePayload || rawLen > maxFramePayload {
		return nil, fmt.Errorf("dist: frame payload too large")
	}
	if int64(len(b)-off) != plen {
		return nil, fmt.Errorf("dist: frame declares %d payload bytes, has %d", plen, len(b)-off)
	}
	payload := b[off:]
	if flags&flagDeflate == 0 {
		return payload, nil
	}
	zr := flate.NewReader(bytes.NewReader(payload))
	// Preallocation is capped well below maxFramePayload: rawLen is
	// attacker-controlled, and trusting it before any compressed data
	// has been verified would let a ~24-byte frame allocate 1 GiB. The
	// buffer grows naturally past the cap for honest large frames.
	prealloc := rawLen
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	buf := bytes.NewBuffer(make([]byte, 0, prealloc))
	// +1 so a stream longer than declared is detected, not truncated.
	n, err := io.Copy(buf, io.LimitReader(zr, rawLen+1))
	if err != nil {
		return nil, fmt.Errorf("dist: corrupt compressed frame: %v", err)
	}
	if n != rawLen {
		return nil, fmt.Errorf("dist: compressed frame declares %d raw bytes, has %d", rawLen, n)
	}
	return buf.Bytes(), nil
}

// ---------- body primitives ----------

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendStr(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBlob(b []byte, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendInts(b []byte, xs []int) []byte {
	b = appendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = appendI64(b, int64(x))
	}
	return b
}

func appendInt64s(b []byte, xs []int64) []byte {
	b = appendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = appendI64(b, x)
	}
	return b
}

// breader is a bounds-checked body reader: every accessor returns a zero
// value once an error latched, so decoders read the whole layout and check
// err once at the end. List and blob length prefixes are validated against
// the remaining bytes before allocation.
type breader struct {
	b   []byte
	off int
	err error
}

func (r *breader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("dist: "+format, args...)
	}
}

func (r *breader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *breader) i64() int64 {
	if r.err != nil {
		return 0
	}
	if len(r.b)-r.off < 8 {
		r.fail("truncated int64 at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return int64(v)
}

func (r *breader) f64() float64 { return math.Float64frombits(uint64(r.i64())) }

func (r *breader) boolean() bool {
	if r.err != nil {
		return false
	}
	if len(r.b)-r.off < 1 {
		r.fail("truncated bool at offset %d", r.off)
		return false
	}
	v := r.b[r.off]
	r.off++
	return v != 0
}

// length reads a list/blob length prefix, rejecting counts that cannot fit
// in the remaining bytes at elemSize bytes per element.
func (r *breader) length(elemSize int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.off)/uint64(elemSize) {
		r.fail("corrupt length %d at offset %d", v, r.off)
		return 0
	}
	return int(v)
}

func (r *breader) str() string {
	n := r.length(1)
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *breader) blob() []byte {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, r.b[r.off:])
	r.off += n
	return p
}

func (r *breader) ints() []int {
	n := r.length(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.i64())
	}
	return out
}

func (r *breader) int64s() []int64 {
	n := r.length(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}

// remaining reports whether undecoded bytes are left — the hook that
// lets messages grow optional trailing fields (older frames simply end
// early and the new fields decode as zero).
func (r *breader) remaining() bool {
	return r.err == nil && r.off < len(r.b)
}

func (r *breader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("dist: %d trailing bytes after message body", len(r.b)-r.off)
	}
	return nil
}

// ---------- message bodies ----------

func appendParams(b []byte, p core.Params) []byte {
	b = appendI64(b, p.U)
	b = appendI64(b, int64(p.K))
	b = appendF64(b, p.Epsilon)
	b = appendI64(b, p.SplitSize)
	b = appendI64(b, int64(p.Seed))
	b = appendI64(b, int64(p.Parallelism))
	b = appendBool(b, p.CombineEnabled)
	b = appendI64(b, p.SketchBytes)
	b = appendI64(b, int64(p.SketchDegree))
	return b
}

func (r *breader) params() core.Params {
	var p core.Params
	p.U = r.i64()
	p.K = int(r.i64())
	p.Epsilon = r.f64()
	p.SplitSize = r.i64()
	p.Seed = uint64(r.i64())
	p.Parallelism = int(r.i64())
	p.CombineEnabled = r.boolean()
	p.SketchBytes = r.i64()
	p.SketchDegree = int(r.i64())
	return p
}

func appendSpec(b []byte, s DatasetSpec) []byte {
	b = appendStr(b, s.Kind)
	b = appendI64(b, s.Records)
	b = appendI64(b, s.Domain)
	b = appendF64(b, s.Alpha)
	b = appendI64(b, int64(s.RecordSize))
	b = appendI64(b, s.ChunkSize)
	b = appendI64(b, int64(s.Nodes))
	b = appendI64(b, int64(s.Seed))
	b = appendI64(b, int64(s.ClientBits))
	b = appendI64(b, int64(s.ObjectBits))
	b = appendInt64s(b, s.Keys)
	return b
}

func (r *breader) spec() DatasetSpec {
	var s DatasetSpec
	s.Kind = r.str()
	s.Records = r.i64()
	s.Domain = r.i64()
	s.Alpha = r.f64()
	s.RecordSize = int(r.i64())
	s.ChunkSize = r.i64()
	s.Nodes = int(r.i64())
	s.Seed = uint64(r.i64())
	s.ClientBits = uint(r.i64())
	s.ObjectBits = uint(r.i64())
	s.Keys = r.int64s()
	return s
}

// EncodeMapRequest frames a map request in the binary wire format.
func EncodeMapRequest(req *MapRequest) []byte {
	b := appendStr(nil, req.JobID)
	b = appendStr(b, req.Method)
	b = appendParams(b, req.Params)
	b = appendSpec(b, req.Dataset)
	b = appendInts(b, req.Splits)
	b = appendI64(b, int64(req.Round))
	b = appendI64(b, int64(req.Rounds))
	b = appendBlob(b, req.Broadcast)
	return encodeFrame(msgMapRequest, b)
}

// DecodeMapRequest is the inverse of EncodeMapRequest.
func DecodeMapRequest(frame []byte) (*MapRequest, error) {
	body, err := decodeFrame(frame, msgMapRequest)
	if err != nil {
		return nil, err
	}
	r := &breader{b: body}
	req := &MapRequest{}
	req.JobID = r.str()
	req.Method = r.str()
	req.Params = r.params()
	req.Dataset = r.spec()
	req.Splits = r.ints()
	req.Round = int(r.i64())
	req.Rounds = int(r.i64())
	req.Broadcast = r.blob()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("bad map request: %w", err)
	}
	return req, nil
}

// EncodeMapResponse frames a map response in the binary wire format.
func EncodeMapResponse(resp *MapResponse) []byte {
	b := appendStr(nil, resp.JobID)
	b = appendBlob(b, resp.Partials)
	b = appendInts(b, resp.Replayed)
	b = appendInts(b, resp.Cached)
	b = appendStr(b, resp.Error)
	return encodeFrame(msgMapResponse, b)
}

// DecodeMapResponse is the inverse of EncodeMapResponse.
func DecodeMapResponse(frame []byte) (*MapResponse, error) {
	body, err := decodeFrame(frame, msgMapResponse)
	if err != nil {
		return nil, err
	}
	r := &breader{b: body}
	resp := &MapResponse{}
	resp.JobID = r.str()
	resp.Partials = r.blob()
	resp.Replayed = r.ints()
	resp.Cached = r.ints()
	resp.Error = r.str()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("bad map response: %w", err)
	}
	return resp, nil
}

// EncodeRegisterRequest frames a worker registration.
func EncodeRegisterRequest(req *RegisterRequest) []byte {
	b := appendStr(nil, req.ID)
	b = appendStr(b, req.Addr)
	b = appendI64(b, int64(req.Capacity))
	return encodeFrame(msgRegisterRequest, b)
}

// DecodeRegisterRequest is the inverse of EncodeRegisterRequest.
func DecodeRegisterRequest(frame []byte) (*RegisterRequest, error) {
	body, err := decodeFrame(frame, msgRegisterRequest)
	if err != nil {
		return nil, err
	}
	r := &breader{b: body}
	req := &RegisterRequest{}
	req.ID = r.str()
	req.Addr = r.str()
	req.Capacity = int(r.i64())
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("bad register request: %w", err)
	}
	return req, nil
}

// EncodeRegisterResponse frames a registration ack.
func EncodeRegisterResponse(resp *RegisterResponse) []byte {
	b := appendBool(nil, resp.OK)
	b = appendI64(b, resp.HeartbeatMillis)
	return encodeFrame(msgRegisterResponse, b)
}

// DecodeRegisterResponse is the inverse of EncodeRegisterResponse.
func DecodeRegisterResponse(frame []byte) (*RegisterResponse, error) {
	body, err := decodeFrame(frame, msgRegisterResponse)
	if err != nil {
		return nil, err
	}
	r := &breader{b: body}
	resp := &RegisterResponse{}
	resp.OK = r.boolean()
	resp.HeartbeatMillis = r.i64()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("bad register response: %w", err)
	}
	return resp, nil
}

// EncodeHeartbeatRequest frames a heartbeat.
func EncodeHeartbeatRequest(req *HeartbeatRequest) []byte {
	return encodeFrame(msgHeartbeatRequest, appendStr(nil, req.ID))
}

// DecodeHeartbeatRequest is the inverse of EncodeHeartbeatRequest.
func DecodeHeartbeatRequest(frame []byte) (*HeartbeatRequest, error) {
	body, err := decodeFrame(frame, msgHeartbeatRequest)
	if err != nil {
		return nil, err
	}
	r := &breader{b: body}
	req := &HeartbeatRequest{ID: r.str()}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("bad heartbeat request: %w", err)
	}
	return req, nil
}

// EncodeHeartbeatResponse frames a heartbeat ack.
func EncodeHeartbeatResponse(resp *HeartbeatResponse) []byte {
	return encodeFrame(msgHeartbeatResponse, appendBool(nil, resp.OK))
}

// DecodeHeartbeatResponse is the inverse of EncodeHeartbeatResponse.
func DecodeHeartbeatResponse(frame []byte) (*HeartbeatResponse, error) {
	body, err := decodeFrame(frame, msgHeartbeatResponse)
	if err != nil {
		return nil, err
	}
	r := &breader{b: body}
	resp := &HeartbeatResponse{OK: r.boolean()}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("bad heartbeat response: %w", err)
	}
	return resp, nil
}

// EncodeReleaseRequest frames a lease release.
func EncodeReleaseRequest(req *ReleaseRequest) []byte {
	return encodeFrame(msgReleaseRequest, appendStr(nil, req.JobID))
}

// DecodeReleaseRequest is the inverse of EncodeReleaseRequest.
func DecodeReleaseRequest(frame []byte) (*ReleaseRequest, error) {
	body, err := decodeFrame(frame, msgReleaseRequest)
	if err != nil {
		return nil, err
	}
	r := &breader{b: body}
	req := &ReleaseRequest{JobID: r.str()}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("bad release request: %w", err)
	}
	return req, nil
}

// EncodeReleaseResponse frames a release ack.
func EncodeReleaseResponse(resp *ReleaseResponse) []byte {
	b := appendBool(nil, resp.OK)
	b = appendBool(b, resp.Released)
	return encodeFrame(msgReleaseResponse, b)
}

// DecodeReleaseResponse is the inverse of EncodeReleaseResponse.
func DecodeReleaseResponse(frame []byte) (*ReleaseResponse, error) {
	body, err := decodeFrame(frame, msgReleaseResponse)
	if err != nil {
		return nil, err
	}
	r := &breader{b: body}
	resp := &ReleaseResponse{}
	resp.OK = r.boolean()
	resp.Released = r.boolean()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("bad release response: %w", err)
	}
	return resp, nil
}
