package wavelethist

import (
	"fmt"

	"wavelethist/dist"
	"wavelethist/internal/datagen"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
)

// Dataset is a keyed record file stored in the simulated HDFS, ready to be
// processed by the construction methods.
type Dataset struct {
	fs     *hdfs.FileSystem
	file   *hdfs.File
	domain int64
	// spec is the deterministic generation recipe, kept so distributed
	// builds can ship it to workers instead of the data.
	spec *dist.DatasetSpec
}

// Spec returns the dataset's generation recipe — what BuildDistributed
// ships to workers so they can materialize an identical local copy.
func (d *Dataset) Spec() *dist.DatasetSpec { return d.spec }

// Domain returns the key-domain size u (a power of two).
func (d *Dataset) Domain() int64 { return d.domain }

// NumRecords returns the number of records n.
func (d *Dataset) NumRecords() int64 { return d.file.NumRecords }

// SizeBytes returns the stored file size.
func (d *Dataset) SizeBytes() int64 { return d.file.Size() }

// NumSplits returns the number of MapReduce splits m at the given split
// size (0 = chunk size).
func (d *Dataset) NumSplits(splitSize int64) int { return len(d.file.Splits(splitSize)) }

// ExactFrequencies scans the whole dataset and returns the ground-truth
// frequency map (for accuracy evaluation; the algorithms never call this).
func (d *Dataset) ExactFrequencies() map[int64]float64 {
	return datagen.ExactFrequencies(d.file)
}

// ZipfOptions configures a synthetic Zipfian dataset, the paper's primary
// synthetic workload.
type ZipfOptions struct {
	Records int64   // n
	Domain  int64   // u, a power of two
	Alpha   float64 // skew (paper: 0.8 / 1.1 / 1.4; default 1.1)
	// RecordSize pads each record to this many bytes (default 4: the
	// paper's key-only records).
	RecordSize int
	// ChunkSize is the simulated HDFS chunk size (default 64 KiB, the
	// scaled analogue of the paper's 256 MB).
	ChunkSize int64
	// Nodes is the number of simulated DataNodes (default 15, the
	// paper's slave count).
	Nodes int
	Seed  uint64
}

func fillDatasetDefaults(chunk int64, nodes int) (int64, int) {
	if chunk == 0 {
		chunk = hdfs.DefaultChunkSize
	}
	if nodes == 0 {
		nodes = 15
	}
	return chunk, nodes
}

// NewZipfDataset generates a Zipfian dataset.
func NewZipfDataset(o ZipfOptions) (*Dataset, error) {
	if o.Alpha == 0 {
		o.Alpha = 1.1
	}
	if o.RecordSize == 0 {
		o.RecordSize = 4
	}
	chunk, nodes := fillDatasetDefaults(o.ChunkSize, o.Nodes)
	fs := hdfs.NewFileSystem(nodes, chunk)
	spec := datagen.NewZipfSpec(o.Records, o.Domain, o.Alpha, o.Seed)
	spec.RecordSize = o.RecordSize
	f, err := datagen.GenerateZipf(fs, "zipf", spec)
	if err != nil {
		return nil, err
	}
	ds := dist.DatasetSpec{
		Kind: "zipf", Records: o.Records, Domain: o.Domain, Alpha: o.Alpha,
		RecordSize: o.RecordSize, ChunkSize: chunk, Nodes: nodes, Seed: o.Seed,
	}.Normalize()
	return &Dataset{fs: fs, file: f, domain: o.Domain, spec: &ds}, nil
}

// WorldCupOptions configures the WorldCup-like access-log dataset (the
// scaled stand-in for the paper's real 1998 WorldCup trace; see DESIGN.md
// for the substitution rationale).
type WorldCupOptions struct {
	Records    int64
	ClientBits uint // clients = 2^ClientBits (default 10)
	ObjectBits uint // objects = 2^ObjectBits (default 10)
	ChunkSize  int64
	Nodes      int
	Seed       uint64
}

// NewWorldCupDataset generates the access-log dataset keyed by the packed
// clientobject attribute.
func NewWorldCupDataset(o WorldCupOptions) (*Dataset, error) {
	spec := datagen.NewWorldCupSpec(o.Records, o.Seed)
	if o.ClientBits != 0 {
		spec.ClientBits = o.ClientBits
	}
	if o.ObjectBits != 0 {
		spec.ObjectBits = o.ObjectBits
	}
	if spec.ClientBits+spec.ObjectBits > 32 {
		spec.RecordSize = 8
	}
	chunk, nodes := fillDatasetDefaults(o.ChunkSize, o.Nodes)
	fs := hdfs.NewFileSystem(nodes, chunk)
	f, err := datagen.GenerateWorldCup(fs, "worldcup", spec)
	if err != nil {
		return nil, err
	}
	ds := dist.DatasetSpec{
		Kind: "worldcup", Records: o.Records, ClientBits: spec.ClientBits,
		ObjectBits: spec.ObjectBits, RecordSize: spec.RecordSize,
		ChunkSize: chunk, Nodes: nodes, Seed: o.Seed,
	}.Normalize()
	return &Dataset{fs: fs, file: f, domain: spec.U(), spec: &ds}, nil
}

// KeysOptions configures a dataset built from caller-provided keys.
type KeysOptions struct {
	// Domain is the key-domain size u (power of two). Keys must lie in
	// [0, Domain).
	Domain     int64
	RecordSize int // default 4 (8 required when Domain > 2^32)
	ChunkSize  int64
	Nodes      int
}

// NewDatasetFromKeys loads caller-provided keys — the path for adopting
// this library on real data.
func NewDatasetFromKeys(keys []int64, o KeysOptions) (*Dataset, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("wavelethist: empty key set")
	}
	if !wavelet.IsPowerOfTwo(o.Domain) {
		return nil, fmt.Errorf("wavelethist: domain %d is not a power of two", o.Domain)
	}
	if o.RecordSize == 0 {
		o.RecordSize = 4
		if o.Domain > 1<<32 {
			o.RecordSize = 8
		}
	}
	chunk, nodes := fillDatasetDefaults(o.ChunkSize, o.Nodes)
	fs := hdfs.NewFileSystem(nodes, chunk)
	w, err := fs.Create("user", o.RecordSize)
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		if k < 0 || k >= o.Domain {
			return nil, fmt.Errorf("wavelethist: key %d outside domain [0, %d)", k, o.Domain)
		}
		w.Append(k)
	}
	ds := dist.DatasetSpec{
		Kind: "keys", Domain: o.Domain, RecordSize: o.RecordSize,
		ChunkSize: chunk, Nodes: nodes, Keys: append([]int64(nil), keys...),
	}.Normalize()
	return &Dataset{fs: fs, file: w.Close(), domain: o.Domain, spec: &ds}, nil
}
