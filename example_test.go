package wavelethist_test

import (
	"fmt"

	"wavelethist"
)

// Building a histogram with the paper's TwoLevel-S algorithm and querying
// range selectivities.
func ExampleBuild() {
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 16,
		Domain:  1 << 12,
		Alpha:   1.1,
		Seed:    1,
	})
	if err != nil {
		panic(err)
	}
	res, err := wavelethist.Build(ds, wavelethist.TwoLevelS, wavelethist.Options{
		K:       30,
		Epsilon: 1e-2,
		Seed:    2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rounds, "MapReduce round")
	fmt.Println(res.Histogram.K(), "coefficients retained")
	// Output:
	// 1 MapReduce round
	// 30 coefficients retained
}

// Exact construction with H-WTopk: three MapReduce rounds, orders of
// magnitude less communication than shipping frequency vectors.
func ExampleBuild_exact() {
	ds, err := wavelethist.NewDatasetFromKeys(
		[]int64{3, 3, 3, 3, 7, 7, 12, 500, 500, 500},
		wavelethist.KeysOptions{Domain: 1024},
	)
	if err != nil {
		panic(err)
	}
	res, err := wavelethist.Build(ds, wavelethist.HWTopk, wavelethist.Options{K: 64})
	if err != nil {
		panic(err)
	}
	// With every non-zero coefficient retained, estimates are exact.
	fmt.Printf("count(3) = %.0f\n", res.Histogram.PointEstimate(3))
	fmt.Printf("count(keys in [0,100]) = %.0f\n", res.Histogram.RangeCount(0, 100))
	// Output:
	// count(3) = 4
	// count(keys in [0,100]) = 7
}

// Maintaining a histogram under updates without re-running MapReduce.
func ExampleMaintainedHistogram() {
	ds, err := wavelethist.NewDatasetFromKeys(
		[]int64{1, 1, 2, 5, 5, 5},
		wavelethist.KeysOptions{Domain: 64},
	)
	if err != nil {
		panic(err)
	}
	mh, err := wavelethist.NewMaintainedHistogram(ds, 8, 64, wavelethist.Options{})
	if err != nil {
		panic(err)
	}
	mh.Update(2, +9) // nine new records with key 2
	mh.Update(5, -3) // all key-5 records deleted
	h := mh.Histogram()
	fmt.Printf("count(2) = %.0f, count(5) = %.0f\n", h.PointEstimate(2), h.PointEstimate(5))
	// Output:
	// count(2) = 10, count(5) = 0
}
