package wavelethist

import (
	"math"
	"testing"
)

func TestCoarsen(t *testing.T) {
	const side = 64
	xs := []int64{0, 1, 2, 3, 60, 61, 63}
	ys := []int64{0, 0, 1, 1, 60, 62, 63}
	ds, err := NewDataset2DFromPairs(xs, ys, side, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := ds.Coarsen(4)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Side() != 16 {
		t.Fatalf("coarse side = %d, want 16", coarse.Side())
	}
	if coarse.NumRecords() != ds.NumRecords() {
		t.Fatalf("records changed: %d vs %d", coarse.NumRecords(), ds.NumRecords())
	}
	// Build an exact histogram on the coarse grid: block (0,0) holds the
	// first four points, block (15,15) two of the last three.
	res, err := Build2D(coarse, SendV2D, Options{K: 256, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Histogram.PointEstimate(0, 0); math.Abs(got-4) > 1e-6 {
		t.Errorf("coarse cell (0,0) = %v, want 4", got)
	}
	if got := res.Histogram.PointEstimate(15, 15); math.Abs(got-3) > 1e-6 {
		t.Errorf("coarse cell (15,15) = %v, want 3", got)
	}
}

func TestCoarsenDensityIncreases(t *testing.T) {
	// The paper's point: coarsening increases cell density, improving the
	// relative accuracy of sampled 2D histograms on sparse grids.
	const side = 128
	n := 5000
	xs := make([]int64, n)
	ys := make([]int64, n)
	state := uint64(9)
	next := func() int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64(state>>33) & (side - 1)
	}
	for i := range xs {
		xs[i], ys[i] = next(), next()
	}
	ds, _ := NewDataset2DFromPairs(xs, ys, side, 4096, 3)
	coarse, err := ds.Coarsen(16) // 128 -> 8: 5000 points over 64 cells
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build2D(coarse, TwoLevelS2D, Options{K: 40, Epsilon: 0.02, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Each coarse cell holds ~78 points; estimates should be within 60%.
	exact := make(map[int64]float64)
	for i := range xs {
		exact[(xs[i]/16)*8+ys[i]/16]++
	}
	bad := 0
	for cell, truth := range exact {
		est := res.Histogram.PointEstimate(cell/8, cell%8)
		if math.Abs(est-truth) > 0.6*truth {
			bad++
		}
	}
	if bad > len(exact)/4 {
		t.Errorf("%d/%d coarse cells estimated poorly", bad, len(exact))
	}
}

func TestExactGrid(t *testing.T) {
	xs := []int64{0, 0, 3, 7}
	ys := []int64{1, 1, 2, 7}
	ds, err := NewDataset2DFromPairs(xs, ys, 8, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	grid := ds.ExactGrid()
	if grid[0][1] != 2 || grid[3][2] != 1 || grid[7][7] != 1 {
		t.Errorf("grid = %v", grid)
	}
	var total float64
	for i := range grid {
		for j := range grid[i] {
			total += grid[i][j]
		}
	}
	if total != 4 {
		t.Errorf("total mass = %v", total)
	}
}

func TestCoarsenValidation(t *testing.T) {
	ds, _ := NewDataset2DFromPairs([]int64{1}, []int64{1}, 16, 0, 1)
	if _, err := ds.Coarsen(3); err == nil {
		t.Error("accepted non-power-of-two factor")
	}
	if _, err := ds.Coarsen(16); err == nil {
		t.Error("accepted factor >= side")
	}
	if _, err := ds.Coarsen(0); err == nil {
		t.Error("accepted factor 0")
	}
}
