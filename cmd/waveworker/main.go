// Command waveworker is one node of the distributed build fleet: it
// serves map assignments over HTTP and keeps itself registered with a
// wavehistd coordinator via heartbeats.
//
// Usage:
//
//	wavehistd -addr :8080 -dist                 # the coordinator
//	waveworker -coordinator http://host:8080 -addr :9090
//	waveworker -coordinator http://host:8080 -addr :9091 -capacity 4
//
// Each worker materializes registered datasets locally from their
// deterministic generation recipes (the distributed analogue of HDFS
// data locality), runs the assigned splits' map side, and returns
// mergeable partial summaries. Multi-round builds (H-WTopk) additionally
// persist per-job state leases between rounds — inspect them with
// GET /dist/v1/state; they are dropped on the coordinator's release RPC
// or after -lease-ttl of idleness. Kill a worker mid-build: the
// coordinator re-assigns its splits (replaying earlier rounds on the new
// owner when state was lost) and the build completes unchanged.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wavelethist/dist"
	"wavelethist/internal/obs"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://localhost:8080", "coordinator base URL")
		addr        = flag.String("addr", ":9090", "listen address")
		advertise   = flag.String("advertise", "", "URL the coordinator should dial back (default http://<local-ip>:<port>)")
		capacity    = flag.Int("capacity", 2, "concurrent map assignments served")
		id          = flag.String("id", "", "worker id (default derived from the advertised address)")
		leaseTTL    = flag.Duration("lease-ttl", dist.DefaultLeaseTTL, "idle multi-round state leases expire after this long")
		cacheBytes  = flag.Int64("cache-bytes", dist.DefaultPartialCacheBytes, "partial-cache size bound (0 disables caching)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	)
	flag.Parse()
	obs.ServeDebug(*debugAddr, log.Printf)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waveworker:", err)
		os.Exit(1)
	}
	self := *advertise
	if self == "" {
		self = advertiseURL(ln.Addr())
	}
	wid := *id
	if wid == "" {
		wid = "worker-" + strings.TrimPrefix(strings.TrimPrefix(self, "http://"), "https://")
	}

	w := dist.NewWorker(wid, *capacity)
	w.SetLeaseTTL(*leaseTTL)
	w.SetPartialCacheBytes(*cacheBytes)
	srv := &http.Server{Handler: w.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		log.Printf("waveworker %s: serving on %s (advertised %s)", wid, ln.Addr(), self)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal("waveworker:", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := keepRegistered(ctx, *coordinator, dist.RegisterRequest{ID: wid, Addr: self, Capacity: *capacity}); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "waveworker:", err)
		os.Exit(1)
	}

	log.Printf("waveworker %s: shutting down", wid)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
}

// advertiseURL derives a dial-back URL from the listener address,
// substituting a routable host when listening on the wildcard.
func advertiseURL(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
		host = outboundIP()
	}
	return "http://" + net.JoinHostPort(host, port)
}

// outboundIP finds the local address a packet to a public host would use
// (no traffic is sent).
func outboundIP() string {
	conn, err := net.Dial("udp", "192.0.2.1:1")
	if err != nil {
		return "127.0.0.1"
	}
	defer conn.Close()
	host, _, err := net.SplitHostPort(conn.LocalAddr().String())
	if err != nil {
		return "127.0.0.1"
	}
	return host
}

// keepRegistered registers with the coordinator (retrying until it is
// reachable) and then heartbeats at the advertised interval,
// re-registering whenever the coordinator forgets us (e.g. it was
// restarted). Returns when ctx is canceled; a non-nil error means
// registration never succeeded and ctx ended some other way.
func keepRegistered(ctx context.Context, coordinator string, req dist.RegisterRequest) error {
	client := &dist.NegotiatingClient{Client: &http.Client{Timeout: 5 * time.Second}}
	interval, err := register(ctx, client, coordinator, req)
	for err != nil {
		log.Printf("waveworker %s: register: %v (retrying)", req.ID, err)
		select {
		case <-ctx.Done():
			return fmt.Errorf("never registered: %w", err)
		case <-time.After(2 * time.Second):
		}
		interval, err = register(ctx, client, coordinator, req)
	}
	log.Printf("waveworker %s: registered with %s (heartbeat %v)", req.ID, coordinator, interval)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			known, err := heartbeat(ctx, client, coordinator, req.ID)
			if err != nil {
				log.Printf("waveworker %s: heartbeat: %v", req.ID, err)
				continue
			}
			if !known {
				log.Printf("waveworker %s: coordinator forgot us; re-registering", req.ID)
				if _, err := register(ctx, client, coordinator, req); err != nil {
					log.Printf("waveworker %s: re-register: %v", req.ID, err)
				}
			}
		}
	}
}

// register announces the worker via dist.NegotiatingClient, which
// handles the binary-first wire format with sticky JSON fallback for old
// coordinators.
func register(ctx context.Context, c *dist.NegotiatingClient, coordinator string, req dist.RegisterRequest) (time.Duration, error) {
	jsonBody, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	code, raw, usedJSON, err := c.Post(ctx, coordinator+dist.PathRegister,
		dist.EncodeRegisterRequest(&req), jsonBody, func(b []byte) bool {
			_, derr := dist.DecodeRegisterResponse(b)
			return derr == nil
		})
	if err != nil {
		return 0, err
	}
	if code != http.StatusOK {
		return 0, fmt.Errorf("register rejected (HTTP %d)", code)
	}
	var resp dist.RegisterResponse
	if usedJSON {
		if err := json.Unmarshal(raw, &resp); err != nil {
			return 0, fmt.Errorf("bad response: %w", err)
		}
	} else {
		pr, derr := dist.DecodeRegisterResponse(raw)
		if derr != nil {
			return 0, derr
		}
		resp = *pr
	}
	if !resp.OK {
		return 0, fmt.Errorf("register rejected")
	}
	interval := time.Duration(resp.HeartbeatMillis) * time.Millisecond
	if interval <= 0 {
		interval = 3 * time.Second
	}
	return interval, nil
}

func heartbeat(ctx context.Context, c *dist.NegotiatingClient, coordinator, id string) (known bool, err error) {
	hb := dist.HeartbeatRequest{ID: id}
	jsonBody, err := json.Marshal(hb)
	if err != nil {
		return false, err
	}
	code, raw, usedJSON, err := c.Post(ctx, coordinator+dist.PathHeartbeat,
		dist.EncodeHeartbeatRequest(&hb), jsonBody, func(b []byte) bool {
			_, derr := dist.DecodeHeartbeatResponse(b)
			return derr == nil
		})
	if err != nil {
		return false, err
	}
	var resp dist.HeartbeatResponse
	if usedJSON {
		if err := json.Unmarshal(raw, &resp); err != nil {
			return false, fmt.Errorf("bad response: %w", err)
		}
	} else {
		pr, derr := dist.DecodeHeartbeatResponse(raw)
		if derr != nil {
			return false, derr
		}
		resp = *pr
	}
	return code == http.StatusOK && resp.OK, nil
}
