package main

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"wavelethist/dist"
)

// TestKeepRegistered exercises the register → heartbeat → forgotten →
// re-register lifecycle against a real coordinator handler.
func TestKeepRegistered(t *testing.T) {
	coord := dist.NewCoordinator(dist.NewHTTPTransport(), dist.Config{HeartbeatEvery: 10 * time.Millisecond})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- keepRegistered(ctx, srv.URL, dist.RegisterRequest{ID: "w-test", Addr: "http://127.0.0.1:1", Capacity: 1})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for coord.AliveWorkers() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("keepRegistered: %v", err)
	}
}

// TestKeepRegisteredRetriesUntilCoordinatorIsUp: registration retries
// while the coordinator is unreachable and gives up cleanly on cancel.
func TestKeepRegisteredRetriesUntilCoordinatorIsUp(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "not ready", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := keepRegistered(ctx, srv.URL, dist.RegisterRequest{ID: "w", Addr: "http://x", Capacity: 1})
	if err == nil {
		t.Fatal("expected registration failure")
	}
	if hits.Load() == 0 {
		t.Fatal("never attempted registration")
	}
}

// TestAdvertiseURL keeps concrete loopback hosts verbatim.
func TestAdvertiseURL(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	u := advertiseURL(ln.Addr())
	if got, want := u[:17], "http://127.0.0.1:"; got != want {
		t.Fatalf("advertiseURL = %q", u)
	}
}
