// Command wavebench runs the benchmark matrix CI publishes as
// BENCH_pr<N>.json: every construction method on a seeded Zipf dataset
// (simulated cluster), plus distributed loopback builds of the methods
// the acceptance gate tracks — including the three-round H-WTopk on the
// multi-round job engine — method × comm-bytes × build-time, the repo's
// perf trajectory over PRs.
//
// Usage:
//
//	wavebench -out BENCH_pr3.json
//	wavebench -records 1048576 -domain 65536 -workers 4 -out bench.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"wavelethist"
	"wavelethist/dist"
)

// Row is one benchmark measurement.
type Row struct {
	Method           string     `json:"method"`
	Mode             string     `json:"mode"` // "simulated" | "distributed"
	CommBytes        int64      `json:"comm_bytes"`
	ModelCommBytes   int64      `json:"model_comm_bytes"`
	WireBytes        int64      `json:"wire_bytes,omitempty"`
	Rounds           int        `json:"rounds"`
	CandidateSetSize int        `json:"candidate_set_size,omitempty"`
	PerRound         []RoundRow `json:"per_round,omitempty"`
	RecordsRead      int64      `json:"records_read"`
	BytesRead        int64      `json:"bytes_read"`
	WallMillis       int64      `json:"wall_millis"`
	SimulatedSeconds float64    `json:"simulated_seconds"`
}

// RoundRow is one round's slice of a multi-round row.
type RoundRow struct {
	Round          int   `json:"round"`
	ModelCommBytes int64 `json:"model_comm_bytes"`
	WireBytes      int64 `json:"wire_bytes,omitempty"`
}

// Report is the file layout.
type Report struct {
	GeneratedUnix int64 `json:"generated_unix"`
	Dataset       struct {
		Kind    string  `json:"kind"`
		Records int64   `json:"records"`
		Domain  int64   `json:"domain"`
		Alpha   float64 `json:"alpha"`
		Seed    uint64  `json:"seed"`
		Splits  int     `json:"splits"`
	} `json:"dataset"`
	K       int   `json:"k"`
	Workers int   `json:"workers"`
	Results []Row `json:"results"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_pr3.json", "output file")
		records = flag.Int64("records", 1<<19, "dataset records")
		domain  = flag.Int64("domain", 1<<14, "key domain (power of two)")
		alpha   = flag.Float64("alpha", 1.1, "zipf skew")
		seed    = flag.Uint64("seed", 42, "seed")
		k       = flag.Int("k", 30, "retained coefficients")
		workers = flag.Int("workers", 3, "loopback workers for distributed rows")
	)
	flag.Parse()
	if err := run(*out, *records, *domain, *alpha, *seed, *k, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "wavebench:", err)
		os.Exit(1)
	}
}

func run(out string, records, domain int64, alpha float64, seed uint64, k, workers int) error {
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: records, Domain: domain, Alpha: alpha, Seed: seed,
	})
	if err != nil {
		return err
	}
	var rep Report
	rep.GeneratedUnix = time.Now().Unix()
	rep.Dataset.Kind = "zipf"
	rep.Dataset.Records = records
	rep.Dataset.Domain = domain
	rep.Dataset.Alpha = alpha
	rep.Dataset.Seed = seed
	rep.Dataset.Splits = ds.NumSplits(0)
	rep.K = k
	rep.Workers = workers

	opts := wavelethist.Options{K: k, Seed: seed}
	for _, m := range wavelethist.Methods() {
		t0 := time.Now()
		res, err := wavelethist.Build(ds, m, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		rep.Results = append(rep.Results, row(string(m), "simulated", res, time.Since(t0)))
		fmt.Printf("%-12s simulated    comm=%-10d wall=%v\n", m, res.CommBytes, time.Since(t0).Round(time.Millisecond))
	}

	coord, _ := dist.NewLoopbackCluster(workers, 2, dist.Config{})
	for _, m := range []wavelethist.Method{wavelethist.SendV, wavelethist.TwoLevelS, wavelethist.HWTopk} {
		t0 := time.Now()
		res, err := wavelethist.BuildDistributed(context.Background(), ds, m, opts, coord)
		if err != nil {
			return fmt.Errorf("%s distributed: %w", m, err)
		}
		rep.Results = append(rep.Results, row(string(m), "distributed", res, time.Since(t0)))
		fmt.Printf("%-12s distributed  wire=%-10d wall=%v\n", m, res.WireBytes, time.Since(t0).Round(time.Millisecond))
	}

	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

func row(method, mode string, res *wavelethist.Result, wall time.Duration) Row {
	r := Row{
		Method:           method,
		Mode:             mode,
		CommBytes:        res.CommBytes,
		ModelCommBytes:   res.ModelCommBytes,
		WireBytes:        res.WireBytes,
		Rounds:           res.Rounds,
		CandidateSetSize: res.CandidateSetSize,
		RecordsRead:      res.RecordsRead,
		BytesRead:        res.BytesRead,
		WallMillis:       wall.Milliseconds(),
		SimulatedSeconds: res.SimulatedSeconds(),
	}
	for _, pr := range res.PerRound {
		r.PerRound = append(r.PerRound, RoundRow{
			Round:          pr.Round,
			ModelCommBytes: pr.ModelCommBytes,
			WireBytes:      pr.WireBytes,
		})
	}
	return r
}
