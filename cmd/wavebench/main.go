// Command wavebench runs the benchmark matrix CI publishes as
// BENCH_pr<N>.json: every construction method on a seeded Zipf dataset
// (simulated cluster), plus distributed loopback builds of the methods
// the acceptance gate tracks — method × comm-bytes × build-time, the
// repo's perf trajectory over PRs. Distributed rows carry the wire format
// used for byte accounting ("binary" frames vs the legacy "json"
// encoding), warm rows repeat a build against the same fleet to measure
// the workers' partial cache (cached_splits == splits means zero
// recomputation), and the parallel_map section times the worker map fan
// (1 goroutine vs GOMAXPROCS) over one 32-split assignment.
//
// The -queries pass benchmarks the query plane: point/range/batch (1D),
// 2D point, and maintainer update/read traffic, each with a
// query_engine dimension contrasting the O(k) linear scan with the
// error-tree index ("scan" vs "errtree"), plus an end-to-end HTTP batch
// row — ns/op and allocs/op land in the queries section of the report.
// The batch_scalar vs batch_vec rows isolate the vectorized executor:
// the same 256-query batch answered by independent scalar tree walks
// and by the shared-walk merge-join (bit-identical results). The
// vec_threshold sweep brackets the dispatch crossover behind
// serve.Config.VecBatchMin, batch_arena contrasts the flat SoA term
// arena with the retired linked-list one, batch_par times the per-core
// parallel segment executors against the serial shared walk on a
// 4096-query batch (annotated, not skipped, on one core), and range2d
// compares the 2D rectangle sum through the error tree with the scan.
// The registry section compares snapshot-read QPS through the single
// atomic-pointer registry against the per-core striped one, at
// GOMAXPROCS concurrent readers.
//
// The -cluster pass stands up an in-process sharded cluster (two shards,
// each a primary plus a synced read replica, fronted by the consistent-
// hash router) and samples end-to-end routed latency: single point reads
// through the router, the cross-shard scatter-gather batch, and reads
// after a primary is killed (served by the replica via router failover)
// — p50/p99 land in the cluster section. The -qps-workers sweep adds
// sustained-throughput rows: W concurrent clients per level hammer routed
// point reads, reporting achieved QPS plus client-side AND server-side
// p50/p99 (the latter read back from the shard's own latency histograms
// via /v1/stats, so router overhead is separable from serving cost). The
// sweep then repeats through a second router with query coalescing on
// (-coalesce-wait style config), so the wait-window latency tax and the
// batching throughput win are both on the record. The pass closes with
// a failover_mttr row: a health-checked router (25ms probes) over one
// primary+replica shard, primary killed cold — kill → first successful
// routed read and kill → first successful routed write (fenced
// auto-promotion complete) in milliseconds.
//
// Usage:
//
//	wavebench -out BENCH_pr10.json
//	wavebench -records 1048576 -domain 65536 -workers 4 -out bench.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wavelethist"
	"wavelethist/dist"
	"wavelethist/ha"
	"wavelethist/internal/core"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
	"wavelethist/internal/zipf"
	"wavelethist/serve"
)

// Row is one benchmark measurement.
type Row struct {
	Method           string     `json:"method"`
	Mode             string     `json:"mode"` // "simulated" | "distributed"
	WireFormat       string     `json:"wire_format,omitempty"`
	Warm             bool       `json:"warm,omitempty"`
	CommBytes        int64      `json:"comm_bytes"`
	ModelCommBytes   int64      `json:"model_comm_bytes"`
	WireBytes        int64      `json:"wire_bytes,omitempty"`
	Rounds           int        `json:"rounds"`
	CandidateSetSize int        `json:"candidate_set_size,omitempty"`
	CachedSplits     int        `json:"cached_splits,omitempty"`
	PerRound         []RoundRow `json:"per_round,omitempty"`
	RecordsRead      int64      `json:"records_read"`
	BytesRead        int64      `json:"bytes_read"`
	WallMillis       int64      `json:"wall_millis"`
	SimulatedSeconds float64    `json:"simulated_seconds"`
}

// RoundRow is one round's slice of a multi-round row.
type RoundRow struct {
	Round          int   `json:"round"`
	ModelCommBytes int64 `json:"model_comm_bytes"`
	WireBytes      int64 `json:"wire_bytes,omitempty"`
	CachedSplits   int   `json:"cached_splits,omitempty"`
}

// ParallelMap profiles one worker-side map fan-out: the same 32-split
// assignment run with 1 goroutine and with GOMAXPROCS goroutines. On a
// single-core machine both passes run the identical serial path, so the
// parallel pass is skipped and Note says why — publishing a "speedup"
// that is pure scheduler noise would misread as a regression.
type ParallelMap struct {
	Method         string  `json:"method"`
	Splits         int     `json:"splits"`
	SerialMillis   int64   `json:"serial_millis"`
	ParallelMillis int64   `json:"parallel_millis,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	Note           string  `json:"note,omitempty"`
}

// QueryRow is one query-plane measurement: an operation × engine cell of
// the scan-vs-errtree comparison, in ns/op and allocs/op.
type QueryRow struct {
	Op          string  `json:"op"`           // point | range | range2d | batch | batch_scalar | batch_vec | batch_arena | batch_par | vec_threshold | point2d | maintain_update_read | maintain_read | http_batch
	Engine      string  `json:"query_engine"` // "scan" | "errtree" | "vec" | "scalar" | "flat" | "linked"
	Dim         int     `json:"dim"`
	K           int     `json:"k"`
	Domain      int64   `json:"domain"` // grid side for dim == 2
	Batch       int     `json:"batch,omitempty"`
	Workers     int     `json:"workers,omitempty"`    // parallel executor fan width (batch_par rows)
	Maintainer  string  `json:"maintainer,omitempty"` // "cold" (update between reads) | "warm" (cached)
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Note        string  `json:"note,omitempty"`
}

// RegistryRow is one registry snapshot-read throughput measurement:
// GOMAXPROCS goroutines spin on Lookup against the single-pointer
// registry ("single") and the per-core striped one ("striped") — the
// QPS gap is what padding the hot pointer across cache lines buys under
// read contention.
type RegistryRow struct {
	Mode    string  `json:"mode"` // "single" | "striped"
	Stripes int     `json:"stripes"`
	Workers int     `json:"workers"`
	Ops     int     `json:"ops"`
	QPS     float64 `json:"qps"`
}

// ClusterRow is one serving-tier latency measurement through the
// router, in wall-clock microseconds at the labeled percentiles.
// Sustained-QPS rows (op routed_point_qps) additionally report the
// concurrency level, the achieved throughput, and the server-side
// quantiles read back from the shard's own latency histograms via
// /v1/stats — client-side tail minus server-side tail isolates the
// router+transport overhead from serving cost.
type ClusterRow struct {
	Op              string  `json:"op"` // routed_point | cross_batch | routed_point_failover | routed_point_qps | coalesced_point_qps | failover_mttr
	Shards          int     `json:"shards"`
	Replicas        int     `json:"replicas_per_shard"`
	Batch           int     `json:"batch,omitempty"`
	Workers         int     `json:"workers,omitempty"` // concurrent client goroutines
	Samples         int     `json:"samples"`
	QPS             float64 `json:"qps,omitempty"` // achieved sustained throughput
	P50Micros       float64 `json:"p50_micros"`
	P99Micros       float64 `json:"p99_micros"`
	ServerP50Micros float64 `json:"server_p50_micros,omitempty"`
	ServerP99Micros float64 `json:"server_p99_micros,omitempty"`
	// failover_mttr row only: time from killing the primary to the first
	// successful routed read (replica failover) and to the first
	// successful routed write (health-checker auto-promotion complete).
	MTTRReadMillis  float64 `json:"mttr_read_millis,omitempty"`
	MTTRWriteMillis float64 `json:"mttr_write_millis,omitempty"`
	ProbeMillis     float64 `json:"probe_interval_millis,omitempty"`
}

// Report is the file layout.
type Report struct {
	GeneratedUnix int64 `json:"generated_unix"`
	GoMaxProcs    int   `json:"gomaxprocs"`
	Dataset       struct {
		Kind    string  `json:"kind"`
		Records int64   `json:"records"`
		Domain  int64   `json:"domain"`
		Alpha   float64 `json:"alpha"`
		Seed    uint64  `json:"seed"`
		Splits  int     `json:"splits"`
	} `json:"dataset"`
	K           int           `json:"k"`
	Workers     int           `json:"workers"`
	Results     []Row         `json:"results"`
	ParallelMap *ParallelMap  `json:"parallel_map,omitempty"`
	Queries     []QueryRow    `json:"queries,omitempty"`
	Registry    []RegistryRow `json:"registry,omitempty"`
	Cluster     []ClusterRow  `json:"cluster,omitempty"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_pr10.json", "output file")
		records    = flag.Int64("records", 1<<19, "dataset records")
		domain     = flag.Int64("domain", 1<<14, "key domain (power of two)")
		alpha      = flag.Float64("alpha", 1.1, "zipf skew")
		seed       = flag.Uint64("seed", 42, "seed")
		k          = flag.Int("k", 30, "retained coefficients")
		workers    = flag.Int("workers", 3, "loopback workers for distributed rows")
		queries    = flag.Bool("queries", true, "run the query-plane pass (scan vs errtree)")
		qk         = flag.Int("qk", 2048, "retained coefficients for the query pass")
		qdomain    = flag.Int64("qdomain", 1<<20, "key domain for the query pass (power of two)")
		cluster    = flag.Bool("cluster", true, "run the serving-tier pass (routed p50/p99 through the sharded cluster)")
		qpsWorkers = flag.String("qps-workers", "1,4,16", "comma-separated concurrency levels for the sustained-QPS sweep in the cluster pass (empty = skip)")
	)
	flag.Parse()
	levels, err := parseLevels(*qpsWorkers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wavebench: -qps-workers:", err)
		os.Exit(1)
	}
	if err := run(*out, *records, *domain, *alpha, *seed, *k, *workers, *queries, *qk, *qdomain, *cluster, levels); err != nil {
		fmt.Fprintln(os.Stderr, "wavebench:", err)
		os.Exit(1)
	}
}

// parseLevels parses the -qps-workers list ("1,4,16") into sorted
// positive concurrency levels.
func parseLevels(spec string) ([]int, error) {
	var levels []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad concurrency level %q", f)
		}
		levels = append(levels, n)
	}
	sort.Ints(levels)
	return levels, nil
}

func run(out string, records, domain int64, alpha float64, seed uint64, k, workers int, queries bool, qk int, qdomain int64, cluster bool, qpsLevels []int) error {
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: records, Domain: domain, Alpha: alpha, Seed: seed,
	})
	if err != nil {
		return err
	}
	var rep Report
	rep.GeneratedUnix = time.Now().Unix()
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Dataset.Kind = "zipf"
	rep.Dataset.Records = records
	rep.Dataset.Domain = domain
	rep.Dataset.Alpha = alpha
	rep.Dataset.Seed = seed
	rep.Dataset.Splits = ds.NumSplits(0)
	rep.K = k
	rep.Workers = workers

	opts := wavelethist.Options{K: k, Seed: seed}
	for _, m := range wavelethist.Methods() {
		t0 := time.Now()
		res, err := wavelethist.Build(ds, m, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		rep.Results = append(rep.Results, row(string(m), "simulated", "", false, res, time.Since(t0)))
		fmt.Printf("%-12s simulated    comm=%-10d wall=%v\n", m, res.CommBytes, time.Since(t0).Round(time.Millisecond))
	}

	// Distributed rows on the binary wire format; Send-V and H-WTopk run
	// twice against the same fleet — the repeat ("warm") build is served
	// from the workers' partial caches.
	coord, _ := dist.NewLoopbackCluster(workers, 2, dist.Config{})
	distRow := func(m wavelethist.Method, c *dist.Coordinator, format string, warm bool) error {
		t0 := time.Now()
		res, err := wavelethist.BuildDistributed(context.Background(), ds, m, opts, c)
		if err != nil {
			return fmt.Errorf("%s distributed: %w", m, err)
		}
		rep.Results = append(rep.Results, row(string(m), "distributed", format, warm, res, time.Since(t0)))
		label := "distributed"
		if warm {
			label = "dist-warm"
		}
		fmt.Printf("%-12s %-12s wire=%-9d cached=%-3d wall=%v (%s)\n",
			m, label, res.WireBytes, res.CachedSplits, time.Since(t0).Round(time.Millisecond), format)
		return nil
	}
	for _, m := range []wavelethist.Method{wavelethist.SendV, wavelethist.TwoLevelS, wavelethist.HWTopk} {
		if err := distRow(m, coord, "binary", false); err != nil {
			return err
		}
	}
	for _, m := range []wavelethist.Method{wavelethist.SendV, wavelethist.HWTopk} {
		if err := distRow(m, coord, "binary", true); err != nil {
			return err
		}
	}
	// JSON baseline on a fresh fleet (separate caches), for the wire-
	// format comparison.
	jsonCoord, lb := dist.NewLoopbackCluster(workers, 2, dist.Config{})
	lb.JSONWire = true
	if err := distRow(wavelethist.SendV, jsonCoord, "json", false); err != nil {
		return err
	}

	pm, err := parallelMap(ds, k, alpha, seed)
	if err != nil {
		return err
	}
	rep.ParallelMap = pm
	if pm.Note != "" {
		fmt.Printf("parallel map: %d splits, serial=%dms — %s\n", pm.Splits, pm.SerialMillis, pm.Note)
	} else {
		fmt.Printf("parallel map: %d splits, serial=%dms parallel=%dms speedup=%.2fx (GOMAXPROCS=%d)\n",
			pm.Splits, pm.SerialMillis, pm.ParallelMillis, pm.Speedup, rep.GoMaxProcs)
	}

	if queries {
		qrows, err := queryPass(records, alpha, seed, qk, qdomain)
		if err != nil {
			return err
		}
		rep.Queries = qrows
		for _, q := range qrows {
			fmt.Printf("query %-22s %-8s dim=%d k=%-5d u=%-8d %12.1f ns/op %4d allocs/op\n",
				q.Op+maintLabel(q), q.Engine, q.Dim, q.K, q.Domain, q.NsPerOp, q.AllocsPerOp)
		}
	}

	if queries {
		rrows, err := registryPass(records, alpha, seed, qk, qdomain)
		if err != nil {
			return err
		}
		rep.Registry = rrows
		for _, r := range rrows {
			fmt.Printf("registry %-8s stripes=%-3d workers=%-3d qps=%.0f\n", r.Mode, r.Stripes, r.Workers, r.QPS)
		}
	}

	if cluster {
		crows, err := clusterPass(records, domain, alpha, seed, k, qpsLevels)
		if err != nil {
			return err
		}
		mttr, err := mttrPass(records, domain, alpha, seed, k)
		if err != nil {
			return err
		}
		crows = append(crows, *mttr)
		rep.Cluster = crows
		for _, c := range crows {
			if c.Op == "failover_mttr" {
				fmt.Printf("cluster %-22s probe=%.0fms mttr_read=%.1fms mttr_write=%.1fms\n",
					c.Op, c.ProbeMillis, c.MTTRReadMillis, c.MTTRWriteMillis)
				continue
			}
			if c.QPS != 0 {
				line := fmt.Sprintf("cluster %-22s workers=%-3d qps=%-8.0f p50=%8.1fµs p99=%8.1fµs",
					c.Op, c.Workers, c.QPS, c.P50Micros, c.P99Micros)
				if c.ServerP50Micros != 0 {
					line += fmt.Sprintf(" server p50=%8.1fµs p99=%8.1fµs", c.ServerP50Micros, c.ServerP99Micros)
				}
				fmt.Println(line)
				continue
			}
			fmt.Printf("cluster %-22s shards=%d samples=%-5d p50=%8.1fµs p99=%8.1fµs\n",
				c.Op, c.Shards, c.Samples, c.P50Micros, c.P99Micros)
		}
	}

	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// parallelMap times one worker-shaped map fan: every split of the bench
// dataset mapped in a single assignment, serially vs across GOMAXPROCS.
func parallelMap(ds *wavelethist.Dataset, k int, alpha float64, seed uint64) (*ParallelMap, error) {
	spec := dist.DatasetSpec{
		Kind: "zipf", Records: ds.NumRecords(), Domain: ds.Domain(),
		Alpha: alpha, Seed: seed,
	}
	file, _, err := spec.Materialize()
	if err != nil {
		return nil, err
	}
	p := core.Params{U: ds.Domain(), K: k, Seed: seed}
	splits := make([]int, core.NumSplits(file, p))
	for i := range splits {
		splits[i] = i
	}
	time1, err := timeMap(file, p, splits, 1)
	if err != nil {
		return nil, err
	}
	pm := &ParallelMap{
		Method:       string(wavelethist.SendV),
		Splits:       len(splits),
		SerialMillis: time1.Milliseconds(),
	}
	if runtime.GOMAXPROCS(0) < 2 {
		pm.Note = "GOMAXPROCS=1: parallel pass skipped (no cores to fan across; both passes would run the serial path)"
		return pm, nil
	}
	timeN, err := timeMap(file, p, splits, 0) // 0 = GOMAXPROCS
	if err != nil {
		return nil, err
	}
	pm.ParallelMillis = timeN.Milliseconds()
	if timeN > 0 {
		pm.Speedup = float64(time1) / float64(timeN)
	}
	return pm, nil
}

func timeMap(file *hdfs.File, p core.Params, splits []int, parallelism int) (time.Duration, error) {
	p.Parallelism = parallelism
	t0 := time.Now()
	if _, err := core.MapSplits(context.Background(), file, string(wavelethist.SendV), p, splits); err != nil {
		return 0, err
	}
	return time.Since(t0), nil
}

func row(method, mode, format string, warm bool, res *wavelethist.Result, wall time.Duration) Row {
	r := Row{
		Method:           method,
		Mode:             mode,
		WireFormat:       format,
		Warm:             warm,
		CommBytes:        res.CommBytes,
		ModelCommBytes:   res.ModelCommBytes,
		WireBytes:        res.WireBytes,
		Rounds:           res.Rounds,
		CandidateSetSize: res.CandidateSetSize,
		CachedSplits:     res.CachedSplits,
		RecordsRead:      res.RecordsRead,
		BytesRead:        res.BytesRead,
		WallMillis:       wall.Milliseconds(),
		SimulatedSeconds: res.SimulatedSeconds(),
	}
	for _, pr := range res.PerRound {
		r.PerRound = append(r.PerRound, RoundRow{
			Round:          pr.Round,
			ModelCommBytes: pr.ModelCommBytes,
			WireBytes:      pr.WireBytes,
			CachedSplits:   pr.CachedSplits,
		})
	}
	return r
}

func maintLabel(q QueryRow) string {
	if q.Maintainer == "" {
		return ""
	}
	return "(" + q.Maintainer + ")"
}

// queryPass benchmarks the query plane: the same estimates answered by
// the O(k) linear scan and by the error-tree index, over a real build at
// serving-scale k and domain, plus the batch path through serve.Entry
// (allocation-free on reused buffers), 2D points, the incremental
// maintainer under interleaved update/read traffic, and one end-to-end
// HTTP batch row.
func queryPass(records int64, alpha float64, seed uint64, qk int, qdomain int64) ([]QueryRow, error) {
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: records, Domain: qdomain, Alpha: alpha, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	res, err := wavelethist.Build(ds, wavelethist.SendV, wavelethist.Options{K: qk, Seed: seed})
	if err != nil {
		return nil, err
	}
	h := res.Histogram
	coefs := make([]wavelet.Coef, 0, h.K())
	for _, c := range h.Coefficients() {
		coefs = append(coefs, wavelet.Coef{Index: c.Index, Value: c.Value})
	}
	rep1 := wavelet.NewRepresentation(qdomain, coefs)
	k := rep1.K()

	bench := func(row QueryRow, fn func(i int)) QueryRow {
		// Best of 3: shared-host steal time inflates single runs by 30%+;
		// the minimum is the closest estimate of the code's true cost.
		var best testing.BenchmarkResult
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					fn(i)
				}
			})
			if rep == 0 || r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		row.NsPerOp = float64(best.NsPerOp())
		row.AllocsPerOp = best.AllocsPerOp()
		return row
	}
	var rows []QueryRow
	var sink float64
	mask := qdomain - 1

	rows = append(rows,
		bench(QueryRow{Op: "point", Engine: "scan", Dim: 1, K: k, Domain: qdomain}, func(i int) {
			sink += rep1.ScanPointEstimate((int64(i) * 2654435761) & mask)
		}),
		bench(QueryRow{Op: "point", Engine: "errtree", Dim: 1, K: k, Domain: qdomain}, func(i int) {
			sink += rep1.PointEstimate((int64(i) * 2654435761) & mask)
		}),
		bench(QueryRow{Op: "range", Engine: "scan", Dim: 1, K: k, Domain: qdomain}, func(i int) {
			lo := (int64(i) * 2654435761) & (mask >> 1)
			sink += rep1.ScanRangeSum(lo, lo+qdomain/4)
		}),
		bench(QueryRow{Op: "range", Engine: "errtree", Dim: 1, K: k, Domain: qdomain}, func(i int) {
			lo := (int64(i) * 2654435761) & (mask >> 1)
			sink += rep1.RangeSum(lo, lo+qdomain/4)
		}),
	)

	// Batch rows: 256 mixed point/range sub-queries per op, answered
	// through serve.Entry with reused buffers (the HTTP handler's pooled
	// path) and, as the scan baseline, the same loop over the linear scan.
	const batchN = 256
	bqs := make([]serve.BatchQuery, batchN)
	for i := range bqs {
		if i%2 == 0 {
			bqs[i] = serve.BatchQuery{Op: "point", Key: (int64(i) * 7919) & mask}
		} else {
			bqs[i] = serve.BatchQuery{Op: "range", Lo: int64(i * 1024), Hi: (int64(i) * 1024) + qdomain/8}
		}
	}
	brs := make([]serve.BatchResult, batchN)
	reg := serve.NewRegistry()
	entry, err := reg.Publish("bench", h)
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		bench(QueryRow{Op: "batch", Engine: "scan", Dim: 1, K: k, Domain: qdomain, Batch: batchN}, func(i int) {
			for _, q := range bqs {
				if q.Op == "point" {
					sink += rep1.ScanPointEstimate(q.Key)
				} else {
					sink += rep1.ScanRangeSum(q.Lo, q.Hi)
				}
			}
		}),
		bench(QueryRow{Op: "batch", Engine: "errtree", Dim: 1, K: k, Domain: qdomain, Batch: batchN}, func(i int) {
			entry.Batch(bqs, brs)
		}),
	)

	// batch_scalar vs batch_vec: the same 256-query workload answered by
	// independent scalar error-tree walks and by the shared-walk batch
	// executors (bit-identical outputs) — the vectorization win isolated
	// from serve-layer dispatch.
	var pKeys, rLos, rHis []int64
	for _, q := range bqs {
		if q.Op == "point" {
			pKeys = append(pKeys, q.Key)
		} else {
			rLos = append(rLos, q.Lo)
			rHis = append(rHis, q.Hi)
		}
	}
	pOut := make([]float64, len(pKeys))
	rOut := make([]float64, len(rLos))
	rows = append(rows,
		bench(QueryRow{Op: "batch_scalar", Engine: "errtree", Dim: 1, K: k, Domain: qdomain, Batch: batchN}, func(i int) {
			for m, x := range pKeys {
				pOut[m] = rep1.PointEstimate(x)
			}
			for m := range rLos {
				rOut[m] = rep1.RangeSum(rLos[m], rHis[m])
			}
		}),
		bench(QueryRow{Op: "batch_vec", Engine: "errtree", Dim: 1, K: k, Domain: qdomain, Batch: batchN}, func(i int) {
			rep1.BatchPoints(pKeys, pOut)
			rep1.BatchRanges(rLos, rHis, rOut)
		}),
	)

	// vec_threshold: the crossover sweep behind serve.Config.VecBatchMin —
	// the same n-point batch answered by n independent scalar walks and by
	// the shared-walk executor, at sizes bracketing the default threshold
	// (16). Below the crossover the executor's sort-and-park setup costs
	// more than the walks it merges; the published rows are the evidence
	// for the default.
	threshKeys := make([]int64, 64)
	for i := range threshKeys {
		threshKeys[i] = (int64(i) * 2654435761) & mask
	}
	threshOut := make([]float64, len(threshKeys))
	for _, n := range []int{4, 8, 16, 32, 64} {
		keys, tOut := threshKeys[:n], threshOut[:n]
		rows = append(rows,
			bench(QueryRow{Op: "vec_threshold", Engine: "scalar", Dim: 1, K: k, Domain: qdomain, Batch: n}, func(i int) {
				for m, x := range keys {
					tOut[m] = rep1.PointEstimate(x)
				}
			}),
			bench(QueryRow{Op: "vec_threshold", Engine: "vec", Dim: 1, K: k, Domain: qdomain, Batch: n}, func(i int) {
				rep1.BatchPoints(keys, tOut)
			}),
		)
	}

	// batch_arena isolates the flat SoA term arena: the identical shared
	// walk run against the retired linked-list arena (kept as a baseline)
	// and against the contiguous one — the gap is pure memory layout.
	// batch_par then takes the flat executor and fans it across the
	// per-core segment workers on a batch big enough to cross the
	// serve-layer parBatchMin; outputs are bit-identical at any width, so
	// the rows measure cost only. On a one-core runner the parallel row
	// still runs (segmentation overhead is real data) but carries a note
	// so nobody reads scheduler noise as a speedup regression.
	const parN = 4096
	parKeys := make([]int64, parN)
	parLos := make([]int64, parN)
	parHis := make([]int64, parN)
	for i := range parKeys {
		parKeys[i] = (int64(i) * 2654435761) & mask
		parLos[i] = (int64(i) * 40503) & (mask >> 1)
		parHis[i] = parLos[i] + qdomain/8
	}
	parPOut := make([]float64, parN)
	parROut := make([]float64, parN)
	rows = append(rows,
		bench(QueryRow{Op: "batch_arena", Engine: "linked", Dim: 1, K: k, Domain: qdomain, Batch: parN}, func(i int) {
			rep1.BatchPointsLinkedArena(parKeys, parPOut)
		}),
		bench(QueryRow{Op: "batch_arena", Engine: "flat", Dim: 1, K: k, Domain: qdomain, Batch: parN}, func(i int) {
			rep1.BatchPoints(parKeys, parPOut)
		}),
		bench(QueryRow{Op: "batch_par", Engine: "errtree", Dim: 1, K: k, Domain: qdomain, Batch: parN, Workers: 1}, func(i int) {
			rep1.BatchPoints(parKeys, parPOut)
			rep1.BatchRanges(parLos, parHis, parROut)
		}),
	)
	procs := runtime.GOMAXPROCS(0)
	parLevels := []int{2}
	if procs > 2 {
		parLevels = append(parLevels, procs)
	}
	for _, w := range parLevels {
		r := bench(QueryRow{Op: "batch_par", Engine: "errtree", Dim: 1, K: k, Domain: qdomain, Batch: parN, Workers: w}, func(i int) {
			rep1.BatchPointsParallel(parKeys, parPOut, w)
			rep1.BatchRangesParallel(parLos, parHis, parROut, w)
		})
		if procs < 2 {
			r.Note = "GOMAXPROCS=1: parallel executors timed on one core — the row prices segmentation overhead, speedup needs multiple cores"
		}
		rows = append(rows, r)
	}

	// 2D points on a synthesized representation (side² cells; a real 2D
	// build at this k would dominate the pass's runtime without changing
	// what is measured).
	const side = int64(1 << 10)
	rng := zipf.NewRNG(seed)
	coefs2 := make([]wavelet.Coef, 1024)
	for i := range coefs2 {
		coefs2[i] = wavelet.Coef{Index: rng.Int63n(side * side), Value: (rng.Float64() - 0.5) * 1000}
	}
	rep2 := wavelet.NewRepresentation2D(side, coefs2)
	rows = append(rows,
		bench(QueryRow{Op: "point2d", Engine: "scan", Dim: 2, K: len(coefs2), Domain: side}, func(i int) {
			sink += rep2.ScanPointEstimate((int64(i)*31)&(side-1), (int64(i)*17)&(side-1))
		}),
		bench(QueryRow{Op: "point2d", Engine: "errtree", Dim: 2, K: len(coefs2), Domain: side}, func(i int) {
			sink += rep2.PointEstimate((int64(i)*31)&(side-1), (int64(i)*17)&(side-1))
		}),
		bench(QueryRow{Op: "range2d", Engine: "scan", Dim: 2, K: len(coefs2), Domain: side}, func(i int) {
			xlo := (int64(i) * 31) & (side/2 - 1)
			ylo := (int64(i) * 17) & (side/2 - 1)
			sink += rep2.ScanRangeSum(xlo, xlo+side/4, ylo, ylo+side/4)
		}),
		bench(QueryRow{Op: "range2d", Engine: "errtree", Dim: 2, K: len(coefs2), Domain: side}, func(i int) {
			xlo := (int64(i) * 31) & (side/2 - 1)
			ylo := (int64(i) * 17) & (side/2 - 1)
			sink += rep2.RangeSum(xlo, xlo+side/4, ylo, ylo+side/4)
		}),
	)

	// Maintainer rows: "cold" interleaves one update with one read — the
	// serve updates→point pattern. The scan baseline re-selects top-k over
	// the tracked set per read (the pre-errtree behavior); the errtree
	// engine repairs the partition incrementally and patches the snapshot.
	mkMaint := func() *wavelet.Maintainer {
		return wavelet.NewMaintainer(qdomain, coefs, qk, 0)
	}
	mScan, mInc := mkMaint(), mkMaint()
	warm := mkMaint()
	warm.Representation()
	rows = append(rows,
		bench(QueryRow{Op: "maintain_update_read", Engine: "scan", Dim: 1, K: qk, Domain: qdomain, Maintainer: "cold"}, func(i int) {
			mScan.Update((int64(i)*2654435761)&mask, 1)
			r := wavelet.NewRepresentation(qdomain, wavelet.SelectTopK(mScan.TrackedCoefs(), qk))
			sink += r.PointEstimate(int64(i) & mask)
		}),
		bench(QueryRow{Op: "maintain_update_read", Engine: "errtree", Dim: 1, K: qk, Domain: qdomain, Maintainer: "cold"}, func(i int) {
			mInc.Update((int64(i)*2654435761)&mask, 1)
			sink += mInc.Representation().PointEstimate(int64(i) & mask)
		}),
		bench(QueryRow{Op: "maintain_read", Engine: "errtree", Dim: 1, K: qk, Domain: qdomain, Maintainer: "warm"}, func(i int) {
			sink += warm.Representation().PointEstimate(int64(i) & mask)
		}),
	)

	// End-to-end HTTP: the batch endpoint through JSON decode, pooled
	// buffers, the shared index, and JSON encode.
	srv, err := serve.NewServer(serve.Config{})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	if _, err := srv.Registry().Publish("bench", h); err != nil {
		return nil, err
	}
	body, err := json.Marshal(map[string]any{"queries": bqs})
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		bench(QueryRow{Op: "http_batch", Engine: "errtree", Dim: 1, K: k, Domain: qdomain, Batch: batchN}, func(i int) {
			req := httptest.NewRequest("POST", "/v1/hist/bench/query", bytes.NewReader(body))
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, req)
			if w.Code != 200 {
				panic(fmt.Sprintf("http batch returned %d", w.Code))
			}
		}),
	)
	_ = sink
	return rows, nil
}

// registryPass measures registry snapshot-read throughput at GOMAXPROCS
// concurrent readers, single-pointer vs per-core striped. Each reader
// does Lookup (one striped or shared atomic load plus a map probe) in a
// hot loop — the serving tier's per-query fixed cost. Under real load
// every core runs this against the same registry, so the shared-pointer
// cache-line bounce the striping removes is exactly what is measured.
func registryPass(records int64, alpha float64, seed uint64, qk int, qdomain int64) ([]RegistryRow, error) {
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: records, Domain: qdomain, Alpha: alpha, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	res, err := wavelethist.Build(ds, wavelethist.SendV, wavelethist.Options{K: qk, Seed: seed})
	if err != nil {
		return nil, err
	}
	// At least 4 reader goroutines and 2 stripes even on a small machine,
	// so the striped row always runs the striped code path (1 stripe
	// would silently degrade to the single-pointer registry and compare
	// it against itself).
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	stripes := runtime.GOMAXPROCS(0)
	if stripes < 2 {
		stripes = 2
	}
	const perWorker = 1 << 21
	var rows []RegistryRow
	for _, mode := range []struct {
		name    string
		stripes int
	}{{"single", 1}, {"striped", stripes}} {
		reg := serve.NewRegistryStripes(mode.stripes)
		if _, err := reg.Publish("bench", res.Histogram); err != nil {
			return nil, err
		}
		var sink atomic.Uint64
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local uint64
				for i := 0; i < perWorker; i++ {
					if e, ok := reg.Lookup("bench"); ok {
						local += e.Version
					}
				}
				sink.Add(local)
			}()
		}
		wg.Wait()
		elapsed := time.Since(t0)
		if sink.Load() == 0 {
			return nil, fmt.Errorf("registry pass: lookups found nothing")
		}
		total := workers * perWorker
		rows = append(rows, RegistryRow{
			Mode: mode.name, Stripes: mode.stripes, Workers: workers,
			Ops: total, QPS: float64(total) / elapsed.Seconds(),
		})
	}
	return rows, nil
}

// clusterPass measures the serving tier end to end: real HTTP through
// the router to an in-process cluster of two shards, each a primary and
// one synced read replica. Latency is sampled per request (not averaged
// by testing.Benchmark) because the serving tier's contract is a tail —
// p99 through the router is what a query optimizer's planning budget
// sees — and the failover row deliberately pays the dead-primary retry
// on every read, which is the degraded steady state until promotion.
func clusterPass(records, domain int64, alpha float64, seed uint64, k int, qpsLevels []int) ([]ClusterRow, error) {
	const (
		shards       = 2
		pointSamples = 2000
		batchSamples = 300
		batchN       = 64
	)
	type shardNode struct {
		primary *serve.Server
		pTS     *httptest.Server
		replica *serve.Server
		rTS     *httptest.Server
		rep     *ha.Replica
	}
	var (
		nodes []shardNode
		spec  []ha.Shard
	)
	defer func() {
		for _, n := range nodes {
			if n.pTS != nil {
				n.pTS.Close()
			}
			if n.rTS != nil {
				n.rTS.Close()
			}
		}
	}()
	for i := 0; i < shards; i++ {
		pSrv, err := serve.NewServer(serve.Config{Shard: fmt.Sprintf("s%d", i)})
		if err != nil {
			return nil, err
		}
		pTS := httptest.NewServer(pSrv)
		rSrv, err := serve.NewServer(serve.Config{ReadOnly: true, Shard: fmt.Sprintf("s%d", i)})
		if err != nil {
			pTS.Close()
			return nil, err
		}
		rTS := httptest.NewServer(rSrv)
		nodes = append(nodes, shardNode{
			primary: pSrv, pTS: pTS,
			replica: rSrv, rTS: rTS,
			rep: ha.NewReplica(rSrv, pTS.URL, time.Second),
		})
		spec = append(spec, ha.Shard{
			ID: fmt.Sprintf("s%d", i), Primary: pTS.URL, Replicas: []string{rTS.URL},
		})
	}
	router, err := ha.NewRouter(spec)
	if err != nil {
		return nil, err
	}
	rtTS := httptest.NewServer(router)
	defer rtTS.Close()

	// One histogram per shard, built once and published directly, then
	// pulled onto the replicas so failover reads have data to serve.
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: records, Domain: domain, Alpha: alpha, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, shards)
	for i := range names {
		id := fmt.Sprintf("s%d", i)
		for c := 0; c < 256 && names[i] == ""; c++ {
			if n := fmt.Sprintf("bench-%d", c); router.Shard(n).ID == id {
				names[i] = n
			}
		}
		if names[i] == "" {
			return nil, fmt.Errorf("no bench name lands on shard %s", id)
		}
		res, err := wavelethist.Build(ds, wavelethist.SendV, wavelethist.Options{K: k, Seed: seed + uint64(i)})
		if err != nil {
			return nil, err
		}
		if _, err := nodes[i].primary.Registry().Publish(names[i], res.Histogram); err != nil {
			return nil, err
		}
		if err := nodes[i].rep.SyncOnce(context.Background()); err != nil {
			return nil, err
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	get := func(url string) error {
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
		}
		return nil
	}
	sample := func(n int, fn func(i int) error) ([]time.Duration, error) {
		for i := 0; i < 16; i++ { // warm connections and pools
			if err := fn(i); err != nil {
				return nil, err
			}
		}
		lat := make([]time.Duration, n)
		for i := range lat {
			t0 := time.Now()
			if err := fn(i); err != nil {
				return nil, err
			}
			lat[i] = time.Since(t0)
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		return lat, nil
	}
	pctl := func(lat []time.Duration, p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx].Nanoseconds()) / 1e3
	}
	mask := domain - 1

	var rows []ClusterRow
	// Routed point reads, alternating shards — the healthy path.
	lat, err := sample(pointSamples, func(i int) error {
		return get(fmt.Sprintf("%s/v1/hist/%s/point?key=%d", rtTS.URL, names[i%shards], (int64(i)*2654435761)&mask))
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, ClusterRow{
		Op: "routed_point", Shards: shards, Replicas: 1, Samples: pointSamples,
		P50Micros: pctl(lat, 0.50), P99Micros: pctl(lat, 0.99),
	})

	// Cross-shard batch: one scatter-gather round trip spanning both shards.
	queries := make([]map[string]any, batchN)
	for i := range queries {
		queries[i] = map[string]any{
			"name": names[i%shards], "op": "point", "key": (int64(i) * 7919) & mask,
		}
	}
	payload, err := json.Marshal(map[string]any{"queries": queries})
	if err != nil {
		return nil, err
	}
	lat, err = sample(batchSamples, func(i int) error {
		resp, err := client.Post(rtTS.URL+"/v1/query", "application/json", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cross batch: HTTP %d", resp.StatusCode)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, ClusterRow{
		Op: "cross_batch", Shards: shards, Replicas: 1, Batch: batchN, Samples: batchSamples,
		P50Micros: pctl(lat, 0.50), P99Micros: pctl(lat, 0.99),
	})

	// Sustained-QPS sweep: W concurrent clients hammer routed point reads
	// against a dedicated histogram per level (fresh per-entry stats, so
	// the server-side quantiles reflect only this level's traffic and the
	// sequential rows above don't contaminate them). Client-side p50/p99
	// come from per-request timing; server-side p50/p99 are read back from
	// the owning primary's /v1/stats — the gap is router + HTTP overhead.
	qpsSweep := func(baseURL, prefix, op string, serverStats bool) error {
		for _, workers := range qpsLevels {
			qpsName := ""
			for c := 0; c < 1024 && qpsName == ""; c++ {
				if n := fmt.Sprintf("%s-%d-%d", prefix, workers, c); router.Shard(n).ID == "s0" {
					qpsName = n
				}
			}
			if qpsName == "" {
				return fmt.Errorf("no %s bench name lands on shard s0", prefix)
			}
			res, err := wavelethist.Build(ds, wavelethist.SendV, wavelethist.Options{K: k, Seed: seed})
			if err != nil {
				return err
			}
			if _, err := nodes[0].primary.Registry().Publish(qpsName, res.Histogram); err != nil {
				return err
			}
			perWorker := 2000 / workers
			if perWorker < 50 {
				perWorker = 50
			}
			total := perWorker * workers
			lats := make([][]time.Duration, workers)
			errs := make([]error, workers)
			var wg sync.WaitGroup
			t0 := time.Now()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					lats[w] = make([]time.Duration, 0, perWorker)
					for i := 0; i < perWorker; i++ {
						key := (int64(w*perWorker+i) * 2654435761) & mask
						q0 := time.Now()
						if err := get(fmt.Sprintf("%s/v1/hist/%s/point?key=%d", baseURL, qpsName, key)); err != nil {
							errs[w] = err
							return
						}
						lats[w] = append(lats[w], time.Since(q0))
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(t0)
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			var all []time.Duration
			for _, l := range lats {
				all = append(all, l...)
			}
			sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
			row := ClusterRow{
				Op: op, Shards: shards, Replicas: 1,
				Workers: workers, Samples: total,
				QPS:       float64(total) / elapsed.Seconds(),
				P50Micros: pctl(all, 0.50), P99Micros: pctl(all, 0.99),
			}
			if serverStats {
				sp50, sp99, err := serverQuantiles(client, nodes[0].pTS.URL, qpsName)
				if err != nil {
					return err
				}
				row.ServerP50Micros, row.ServerP99Micros = sp50, sp99
			}
			rows = append(rows, row)
		}
		return nil
	}
	if err := qpsSweep(rtTS.URL, "qps", "routed_point_qps", true); err != nil {
		return nil, err
	}

	// The same sweep through a coalescing router over the identical
	// topology: single-query GETs arriving within the wait window are
	// merged into one vectorized shard batch. At workers=1 the rows price
	// the wait-window latency tax (every lone query waits out the window);
	// at higher concurrency they show the batching win. Server-side
	// quantiles are skipped — coalesced reads land on the shard as batch
	// POSTs, so per-point serving stats never accrue for these names.
	coalRouter, err := ha.NewRouterConfig(spec, ha.RouterConfig{
		CoalesceWait: 250 * time.Microsecond,
		CoalesceMax:  256,
	})
	if err != nil {
		return nil, err
	}
	coalTS := httptest.NewServer(coalRouter)
	defer coalTS.Close()
	if err := qpsSweep(coalTS.URL, "qpsc", "coalesced_point_qps", false); err != nil {
		return nil, err
	}

	// Kill shard 0's primary: every read now pays the router's detect-and-
	// retry against the replica.
	nodes[0].pTS.Close()
	nodes[0].pTS = nil
	lat, err = sample(pointSamples, func(i int) error {
		return get(fmt.Sprintf("%s/v1/hist/%s/point?key=%d", rtTS.URL, names[0], (int64(i)*2654435761)&mask))
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, ClusterRow{
		Op: "routed_point_failover", Shards: shards, Replicas: 1, Samples: pointSamples,
		P50Micros: pctl(lat, 0.50), P99Micros: pctl(lat, 0.99),
	})
	return rows, nil
}

// mttrPass measures the self-healing tier's recovery time: one shard
// (primary + synced read replica) behind a router probing /healthz
// every 25ms, primary killed cold. MTTR-read is kill → first successful
// routed read (replica failover, no promotion needed); MTTR-write is
// kill → first successful routed write, which requires the health
// checker to detect the death, elect the replica, and complete the
// fenced promotion — the full self-healing loop on the clock.
func mttrPass(records, domain int64, alpha float64, seed uint64, k int) (*ClusterRow, error) {
	const probeEvery = 25 * time.Millisecond
	pSrv, err := serve.NewServer(serve.Config{Shard: "s0"})
	if err != nil {
		return nil, err
	}
	pTS := httptest.NewServer(pSrv)
	defer pTS.Close()
	rSrv, err := serve.NewServer(serve.Config{ReadOnly: true, Shard: "s0"})
	if err != nil {
		return nil, err
	}
	rTS := httptest.NewServer(rSrv)
	defer rTS.Close()

	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: records, Domain: domain, Alpha: alpha, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	res, err := wavelethist.Build(ds, wavelethist.SendV, wavelethist.Options{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	if _, err := pSrv.Registry().Publish("mttr", res.Histogram); err != nil {
		return nil, err
	}
	rep := ha.NewReplica(rSrv, pTS.URL, time.Second)
	if err := rep.SyncOnce(context.Background()); err != nil {
		return nil, err
	}

	router, err := ha.NewRouterConfig([]ha.Shard{{
		ID: "s0", Primary: pTS.URL, Replicas: []string{rTS.URL},
	}}, ha.RouterConfig{
		ProbeInterval:      probeEvery,
		ProbeFailThreshold: 3,
		ReadTimeout:        time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer router.Close()
	rtTS := httptest.NewServer(router)
	defer rtTS.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	readURL := rtTS.URL + "/v1/hist/mttr/point?key=1"
	tryRead := func() bool {
		resp, err := client.Get(readURL)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode == http.StatusOK
	}
	tryWrite := func() bool {
		resp, err := client.Post(rtTS.URL+"/v1/hist/mttr/updates", "application/json",
			strings.NewReader(`{"updates":[{"key":1,"delta":1}]}`))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode == http.StatusOK
	}
	// Warm the path and let the checker learn the topology.
	deadline := time.Now().Add(10 * time.Second)
	for !tryRead() || !tryWrite() {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("mttr pass: healthy cluster never served")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(4 * probeEvery)

	killedAt := time.Now()
	pTS.Close()
	var mttrRead, mttrWrite time.Duration
	deadline = killedAt.Add(30 * time.Second)
	for mttrRead == 0 {
		if tryRead() {
			mttrRead = time.Since(killedAt)
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("mttr pass: reads never recovered")
		}
	}
	for mttrWrite == 0 {
		if tryWrite() {
			mttrWrite = time.Since(killedAt)
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("mttr pass: writes never recovered (promotion did not happen)")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return &ClusterRow{
		Op: "failover_mttr", Shards: 1, Replicas: 1, Samples: 1,
		MTTRReadMillis:  float64(mttrRead.Microseconds()) / 1e3,
		MTTRWriteMillis: float64(mttrWrite.Microseconds()) / 1e3,
		ProbeMillis:     float64(probeEvery.Milliseconds()),
	}, nil
}

// serverQuantiles reads one histogram's server-side point-query p50/p99
// (microseconds, derived from the serving histograms) out of /v1/stats.
func serverQuantiles(client *http.Client, base, name string) (p50, p99 float64, err error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var stats struct {
		Histograms map[string]struct {
			Stats struct {
				Point struct {
					Count     int64   `json:"count"`
					P50Micros float64 `json:"p50_micros"`
					P99Micros float64 `json:"p99_micros"`
				} `json:"point"`
			} `json:"stats"`
		} `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return 0, 0, err
	}
	h, ok := stats.Histograms[name]
	if !ok || h.Stats.Point.Count == 0 {
		return 0, 0, fmt.Errorf("no server-side point stats for %q", name)
	}
	return h.Stats.Point.P50Micros, h.Stats.Point.P99Micros, nil
}
