// Command wavebench runs the benchmark matrix CI publishes as
// BENCH_pr<N>.json: every construction method on a seeded Zipf dataset
// (simulated cluster), plus distributed loopback builds of the methods
// the acceptance gate tracks — method × comm-bytes × build-time, the
// repo's perf trajectory over PRs. Distributed rows carry the wire format
// used for byte accounting ("binary" frames vs the legacy "json"
// encoding), warm rows repeat a build against the same fleet to measure
// the workers' partial cache (cached_splits == splits means zero
// recomputation), and the parallel_map section times the worker map fan
// (1 goroutine vs GOMAXPROCS) over one 32-split assignment.
//
// Usage:
//
//	wavebench -out BENCH_pr4.json
//	wavebench -records 1048576 -domain 65536 -workers 4 -out bench.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"wavelethist"
	"wavelethist/dist"
	"wavelethist/internal/core"
	"wavelethist/internal/hdfs"
)

// Row is one benchmark measurement.
type Row struct {
	Method           string     `json:"method"`
	Mode             string     `json:"mode"` // "simulated" | "distributed"
	WireFormat       string     `json:"wire_format,omitempty"`
	Warm             bool       `json:"warm,omitempty"`
	CommBytes        int64      `json:"comm_bytes"`
	ModelCommBytes   int64      `json:"model_comm_bytes"`
	WireBytes        int64      `json:"wire_bytes,omitempty"`
	Rounds           int        `json:"rounds"`
	CandidateSetSize int        `json:"candidate_set_size,omitempty"`
	CachedSplits     int        `json:"cached_splits,omitempty"`
	PerRound         []RoundRow `json:"per_round,omitempty"`
	RecordsRead      int64      `json:"records_read"`
	BytesRead        int64      `json:"bytes_read"`
	WallMillis       int64      `json:"wall_millis"`
	SimulatedSeconds float64    `json:"simulated_seconds"`
}

// RoundRow is one round's slice of a multi-round row.
type RoundRow struct {
	Round          int   `json:"round"`
	ModelCommBytes int64 `json:"model_comm_bytes"`
	WireBytes      int64 `json:"wire_bytes,omitempty"`
	CachedSplits   int   `json:"cached_splits,omitempty"`
}

// ParallelMap profiles one worker-side map fan-out: the same 32-split
// assignment run with 1 goroutine and with GOMAXPROCS goroutines. On a
// single-core machine both passes run the identical serial path, so the
// parallel pass is skipped and Note says why — publishing a "speedup"
// that is pure scheduler noise would misread as a regression.
type ParallelMap struct {
	Method         string  `json:"method"`
	Splits         int     `json:"splits"`
	SerialMillis   int64   `json:"serial_millis"`
	ParallelMillis int64   `json:"parallel_millis,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	Note           string  `json:"note,omitempty"`
}

// Report is the file layout.
type Report struct {
	GeneratedUnix int64 `json:"generated_unix"`
	GoMaxProcs    int   `json:"gomaxprocs"`
	Dataset       struct {
		Kind    string  `json:"kind"`
		Records int64   `json:"records"`
		Domain  int64   `json:"domain"`
		Alpha   float64 `json:"alpha"`
		Seed    uint64  `json:"seed"`
		Splits  int     `json:"splits"`
	} `json:"dataset"`
	K           int          `json:"k"`
	Workers     int          `json:"workers"`
	Results     []Row        `json:"results"`
	ParallelMap *ParallelMap `json:"parallel_map,omitempty"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_pr4.json", "output file")
		records = flag.Int64("records", 1<<19, "dataset records")
		domain  = flag.Int64("domain", 1<<14, "key domain (power of two)")
		alpha   = flag.Float64("alpha", 1.1, "zipf skew")
		seed    = flag.Uint64("seed", 42, "seed")
		k       = flag.Int("k", 30, "retained coefficients")
		workers = flag.Int("workers", 3, "loopback workers for distributed rows")
	)
	flag.Parse()
	if err := run(*out, *records, *domain, *alpha, *seed, *k, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "wavebench:", err)
		os.Exit(1)
	}
}

func run(out string, records, domain int64, alpha float64, seed uint64, k, workers int) error {
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: records, Domain: domain, Alpha: alpha, Seed: seed,
	})
	if err != nil {
		return err
	}
	var rep Report
	rep.GeneratedUnix = time.Now().Unix()
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Dataset.Kind = "zipf"
	rep.Dataset.Records = records
	rep.Dataset.Domain = domain
	rep.Dataset.Alpha = alpha
	rep.Dataset.Seed = seed
	rep.Dataset.Splits = ds.NumSplits(0)
	rep.K = k
	rep.Workers = workers

	opts := wavelethist.Options{K: k, Seed: seed}
	for _, m := range wavelethist.Methods() {
		t0 := time.Now()
		res, err := wavelethist.Build(ds, m, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		rep.Results = append(rep.Results, row(string(m), "simulated", "", false, res, time.Since(t0)))
		fmt.Printf("%-12s simulated    comm=%-10d wall=%v\n", m, res.CommBytes, time.Since(t0).Round(time.Millisecond))
	}

	// Distributed rows on the binary wire format; Send-V and H-WTopk run
	// twice against the same fleet — the repeat ("warm") build is served
	// from the workers' partial caches.
	coord, _ := dist.NewLoopbackCluster(workers, 2, dist.Config{})
	distRow := func(m wavelethist.Method, c *dist.Coordinator, format string, warm bool) error {
		t0 := time.Now()
		res, err := wavelethist.BuildDistributed(context.Background(), ds, m, opts, c)
		if err != nil {
			return fmt.Errorf("%s distributed: %w", m, err)
		}
		rep.Results = append(rep.Results, row(string(m), "distributed", format, warm, res, time.Since(t0)))
		label := "distributed"
		if warm {
			label = "dist-warm"
		}
		fmt.Printf("%-12s %-12s wire=%-9d cached=%-3d wall=%v (%s)\n",
			m, label, res.WireBytes, res.CachedSplits, time.Since(t0).Round(time.Millisecond), format)
		return nil
	}
	for _, m := range []wavelethist.Method{wavelethist.SendV, wavelethist.TwoLevelS, wavelethist.HWTopk} {
		if err := distRow(m, coord, "binary", false); err != nil {
			return err
		}
	}
	for _, m := range []wavelethist.Method{wavelethist.SendV, wavelethist.HWTopk} {
		if err := distRow(m, coord, "binary", true); err != nil {
			return err
		}
	}
	// JSON baseline on a fresh fleet (separate caches), for the wire-
	// format comparison.
	jsonCoord, lb := dist.NewLoopbackCluster(workers, 2, dist.Config{})
	lb.JSONWire = true
	if err := distRow(wavelethist.SendV, jsonCoord, "json", false); err != nil {
		return err
	}

	pm, err := parallelMap(ds, k, alpha, seed)
	if err != nil {
		return err
	}
	rep.ParallelMap = pm
	if pm.Note != "" {
		fmt.Printf("parallel map: %d splits, serial=%dms — %s\n", pm.Splits, pm.SerialMillis, pm.Note)
	} else {
		fmt.Printf("parallel map: %d splits, serial=%dms parallel=%dms speedup=%.2fx (GOMAXPROCS=%d)\n",
			pm.Splits, pm.SerialMillis, pm.ParallelMillis, pm.Speedup, rep.GoMaxProcs)
	}

	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// parallelMap times one worker-shaped map fan: every split of the bench
// dataset mapped in a single assignment, serially vs across GOMAXPROCS.
func parallelMap(ds *wavelethist.Dataset, k int, alpha float64, seed uint64) (*ParallelMap, error) {
	spec := dist.DatasetSpec{
		Kind: "zipf", Records: ds.NumRecords(), Domain: ds.Domain(),
		Alpha: alpha, Seed: seed,
	}
	file, _, err := spec.Materialize()
	if err != nil {
		return nil, err
	}
	p := core.Params{U: ds.Domain(), K: k, Seed: seed}
	splits := make([]int, core.NumSplits(file, p))
	for i := range splits {
		splits[i] = i
	}
	time1, err := timeMap(file, p, splits, 1)
	if err != nil {
		return nil, err
	}
	pm := &ParallelMap{
		Method:       string(wavelethist.SendV),
		Splits:       len(splits),
		SerialMillis: time1.Milliseconds(),
	}
	if runtime.GOMAXPROCS(0) < 2 {
		pm.Note = "GOMAXPROCS=1: parallel pass skipped (no cores to fan across; both passes would run the serial path)"
		return pm, nil
	}
	timeN, err := timeMap(file, p, splits, 0) // 0 = GOMAXPROCS
	if err != nil {
		return nil, err
	}
	pm.ParallelMillis = timeN.Milliseconds()
	if timeN > 0 {
		pm.Speedup = float64(time1) / float64(timeN)
	}
	return pm, nil
}

func timeMap(file *hdfs.File, p core.Params, splits []int, parallelism int) (time.Duration, error) {
	p.Parallelism = parallelism
	t0 := time.Now()
	if _, err := core.MapSplits(context.Background(), file, string(wavelethist.SendV), p, splits); err != nil {
		return 0, err
	}
	return time.Since(t0), nil
}

func row(method, mode, format string, warm bool, res *wavelethist.Result, wall time.Duration) Row {
	r := Row{
		Method:           method,
		Mode:             mode,
		WireFormat:       format,
		Warm:             warm,
		CommBytes:        res.CommBytes,
		ModelCommBytes:   res.ModelCommBytes,
		WireBytes:        res.WireBytes,
		Rounds:           res.Rounds,
		CandidateSetSize: res.CandidateSetSize,
		CachedSplits:     res.CachedSplits,
		RecordsRead:      res.RecordsRead,
		BytesRead:        res.BytesRead,
		WallMillis:       wall.Milliseconds(),
		SimulatedSeconds: res.SimulatedSeconds(),
	}
	for _, pr := range res.PerRound {
		r.PerRound = append(r.PerRound, RoundRow{
			Round:          pr.Round,
			ModelCommBytes: pr.ModelCommBytes,
			WireBytes:      pr.WireBytes,
			CachedSplits:   pr.CachedSplits,
		})
	}
	return r
}
