// Command experiments regenerates the paper's evaluation figures
// (Figures 5-19 of Section 5) as printed tables: communication bytes,
// simulated end-to-end running time on the 16-node heterogeneous cluster
// model, and SSE, for every method the paper compares.
//
// Usage:
//
//	experiments                 # all figures at the scaled defaults
//	experiments -fig fig5,fig6  # selected figures
//	experiments -quick          # small datasets (seconds, for smoke runs)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wavelethist/internal/exper"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "use small datasets")
		figs   = flag.String("fig", "all", "comma-separated figure ids (fig5..fig19) or 'all'")
		seed   = flag.Uint64("seed", 0, "override the default seed")
		list   = flag.Bool("list", false, "list available figure ids and exit")
		csvDir = flag.String("csv", "", "also write each figure as <dir>/<id>.csv")
	)
	flag.Parse()

	if *list {
		for _, e := range exper.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	cfg := exper.Default()
	if *quick {
		cfg = exper.Quick()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	want := map[string]bool{}
	all := *figs == "all"
	for _, id := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(id)] = true
	}

	fmt.Printf("config: %s\n\n", cfg)
	start := time.Now()
	ran := 0
	for _, e := range exper.Registry() {
		if !all && !want[e.ID] {
			continue
		}
		t0 := time.Now()
		figures, err := e.Driver(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, f := range figures {
			f.Print(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, f); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("  (%s computed in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "experiments: no figures matched -fig (use -list)")
		os.Exit(2)
	}
	fmt.Printf("%d experiment(s) in %v\n", ran, time.Since(start).Round(time.Millisecond))
}

// writeCSV stores one figure as <dir>/<id>.csv.
func writeCSV(dir string, f *exper.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	out, err := os.Create(filepath.Join(dir, f.ID+".csv"))
	if err != nil {
		return err
	}
	defer out.Close()
	return f.CSV(out)
}
