// Command wavegen generates binary key datasets (Zipfian or WorldCup-like
// access logs) as local files of little-endian records, the input format
// cmd/wavehist consumes.
//
// Usage:
//
//	wavegen -out data.bin -kind zipf -n 1048576 -u 65536 -alpha 1.1
//	wavegen -out wc.bin -kind worldcup -n 1048576 -clientbits 8 -objectbits 8
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"wavelethist/internal/zipf"
)

func main() {
	var (
		out        = flag.String("out", "", "output file (required)")
		kind       = flag.String("kind", "zipf", "dataset kind: zipf | worldcup")
		n          = flag.Int64("n", 1<<20, "number of records")
		u          = flag.Int64("u", 1<<16, "key domain size (power of two; zipf)")
		alpha      = flag.Float64("alpha", 1.1, "zipf skew")
		seed       = flag.Uint64("seed", 1, "random seed")
		recordSize = flag.Int("record-size", 4, "record size in bytes (>= 4)")
		clientBits = flag.Uint("clientbits", 10, "worldcup: clients = 2^clientbits")
		objectBits = flag.Uint("objectbits", 10, "worldcup: objects = 2^objectbits")
		permute    = flag.Bool("permute", true, "scatter frequency ranks across the key domain")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "wavegen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*out, *kind, *n, *u, *alpha, *seed, *recordSize, *clientBits, *objectBits, *permute); err != nil {
		fmt.Fprintln(os.Stderr, "wavegen:", err)
		os.Exit(1)
	}
}

func run(out, kind string, n, u int64, alpha float64, seed uint64,
	recordSize int, clientBits, objectBits uint, permute bool) error {
	if n < 1 {
		return fmt.Errorf("need at least one record")
	}
	if recordSize < 4 {
		return fmt.Errorf("record size must be >= 4")
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)

	keyGen, domain, err := generator(kind, u, alpha, seed, clientBits, objectBits, permute)
	if err != nil {
		return err
	}
	keyWidth := 4
	if recordSize >= 8 && domain > 1<<32 {
		keyWidth = 8
	}
	if domain > 1<<32 && keyWidth == 4 {
		return fmt.Errorf("domain %d needs -record-size >= 8", domain)
	}
	rec := make([]byte, recordSize)
	for i := int64(0); i < n; i++ {
		key := keyGen()
		for j := range rec {
			rec[j] = 0
		}
		if keyWidth == 8 {
			binary.LittleEndian.PutUint64(rec, uint64(key))
		} else {
			binary.LittleEndian.PutUint32(rec, uint32(key))
		}
		if _, err := w.Write(rec); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records (%d bytes each, domain %d) to %s\n", n, recordSize, domain, out)
	return nil
}

// generator returns a key-drawing closure and the key domain size.
func generator(kind string, u int64, alpha float64, seed uint64,
	clientBits, objectBits uint, permute bool) (func() int64, int64, error) {
	rng := zipf.NewRNG(seed)
	switch kind {
	case "zipf":
		if u&(u-1) != 0 || u < 1 {
			return nil, 0, fmt.Errorf("domain %d is not a power of two", u)
		}
		z := zipf.NewZipf(u, alpha)
		var perm *zipf.Perm
		if permute {
			perm = zipf.NewPerm(u, seed^0xabcdef)
		}
		return func() int64 {
			k := z.Sample(rng) - 1
			if perm != nil {
				k = perm.Apply(k)
			}
			return k
		}, u, nil
	case "worldcup":
		numClients := int64(1) << clientBits
		numObjects := int64(1) << objectBits
		domain := numClients * numObjects
		clients := zipf.NewZipf(numClients, 1.2)
		objects := zipf.NewZipf(numObjects, 1.1)
		cPerm := zipf.NewPerm(numClients, seed^0x11)
		oPerm := zipf.NewPerm(numObjects, seed^0x22)
		return func() int64 {
			c := cPerm.Apply(clients.Sample(rng) - 1)
			o := oPerm.Apply(objects.Sample(rng) - 1)
			return c<<objectBits | o
		}, domain, nil
	default:
		return nil, 0, fmt.Errorf("unknown kind %q (zipf | worldcup)", kind)
	}
}
