package main

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func TestGeneratorZipf(t *testing.T) {
	gen, domain, err := generator("zipf", 1024, 1.1, 5, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if domain != 1024 {
		t.Fatalf("domain = %d", domain)
	}
	for i := 0; i < 10000; i++ {
		k := gen()
		if k < 0 || k >= 1024 {
			t.Fatalf("key %d out of domain", k)
		}
	}
}

func TestGeneratorWorldCup(t *testing.T) {
	gen, domain, err := generator("worldcup", 0, 0, 7, 6, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	if domain != 1<<12 {
		t.Fatalf("domain = %d", domain)
	}
	for i := 0; i < 1000; i++ {
		if k := gen(); k < 0 || k >= domain {
			t.Fatalf("key %d out of domain", k)
		}
	}
}

func TestGeneratorRejects(t *testing.T) {
	if _, _, err := generator("zipf", 1000, 1.1, 1, 0, 0, true); err == nil {
		t.Error("accepted non-power-of-two domain")
	}
	if _, _, err := generator("bogus", 16, 1, 1, 0, 0, true); err == nil {
		t.Error("accepted unknown kind")
	}
}

func TestRunWritesRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := run(path, "zipf", 500, 256, 1.1, 3, 8, 0, 0, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 500*8 {
		t.Fatalf("file size %d, want %d", len(data), 500*8)
	}
	for i := 0; i < 500; i++ {
		k := binary.LittleEndian.Uint32(data[i*8:])
		if k >= 256 {
			t.Fatalf("record %d key %d out of domain", i, k)
		}
	}
	// Validation failures.
	if err := run(path, "zipf", 0, 256, 1.1, 3, 4, 0, 0, true); err == nil {
		t.Error("accepted zero records")
	}
	if err := run(path, "zipf", 10, 256, 1.1, 3, 2, 0, 0, true); err == nil {
		t.Error("accepted record size 2")
	}
}
