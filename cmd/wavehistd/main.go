// Command wavehistd serves wavelet histograms over HTTP: a versioned,
// concurrent registry behind the /v1 JSON API of package serve, with
// optional distributed builds over a waveworker fleet.
//
// Usage:
//
//	wavehistd -addr :8080 -snapshots /var/lib/wavehistd
//	wavehistd -addr :8080 -demo            # boot with a queryable demo histogram
//	wavehistd -addr :8080 -workers 4       # in-process loopback worker fleet
//	wavehistd -addr :8080 -dist            # accept remote waveworker registrations
//
// Then:
//
//	curl localhost:8080/v1/hist
//	curl 'localhost:8080/v1/hist/demo/point?key=42'
//	curl 'localhost:8080/v1/hist/demo/range?lo=0&hi=4095'
//	curl -d '{"queries":[{"op":"point","key":7},{"op":"range","lo":0,"hi":99}]}' \
//	     localhost:8080/v1/hist/demo/query
//	curl -d '{"name":"z","kind":"zipf","records":1000000,"domain":65536,"alpha":1.1}' \
//	     localhost:8080/v1/datasets
//	curl -d '{"name":"h","dataset":"z","method":"TwoLevel-S","k":30,"distributed":true}' \
//	     localhost:8080/v1/build
//	curl -d '{"name":"hw","dataset":"z","method":"H-WTopk","k":30,"distributed":true}' \
//	     localhost:8080/v1/build                       # three-round exact build on the fleet
//	curl -X DELETE localhost:8080/v1/jobs/job-1        # cancel a running build
//	curl localhost:8080/dist/v1/workers                # fleet status
//	curl localhost:8080/dist/v1/fleet                  # queue depth + per-worker load
//	curl -d '{"updates":[{"key":42,"delta":5}],"flush":true}' \
//	     localhost:8080/v1/hist/h/updates
//	curl localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wavelethist"
	"wavelethist/dist"
	"wavelethist/ha"
	"wavelethist/internal/obs"
	"wavelethist/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		snapshots   = flag.String("snapshots", "", "snapshot directory (persists published histograms; empty = in-memory)")
		republish   = flag.Int("republish-every", 256, "updates between automatic maintainer republishes")
		demo        = flag.Bool("demo", false, "register a demo Zipf dataset and publish a 'demo' histogram at startup")
		workers     = flag.Int("workers", 0, "spawn N in-process loopback workers for distributed builds")
		distMode    = flag.Bool("dist", false, "accept remote waveworker registrations on /dist/v1/register")
		replicaOf   = flag.String("replica-of", "", "run as a read replica following the primary wavehistd at this base URL")
		syncEvery   = flag.Duration("sync-every", time.Second, "replica pull interval (with -replica-of)")
		shard       = flag.String("shard", "", "shard label reported in /v1/stats (informational)")
		checkpoints = flag.String("checkpoints", "", "coordinator checkpoint directory: multi-round distributed builds resume at the last round barrier after a daemon restart")
		slowQuery   = flag.Duration("slow-query", 0, "log queries slower than this threshold (0 disables the slow-query log)")
		slowDir     = flag.String("slow-query-dir", "", "append slow queries as JSONL records (slow-queries.jsonl) into this directory")
		traceDir    = flag.String("trace-dir", "", "dump per-build distributed trace spans as JSONL into this directory")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	)
	flag.Parse()

	srv, s, rep, err := newDaemonCfg(daemonConfig{
		addr: *addr, snapshots: *snapshots, republish: *republish, demo: *demo,
		workers: *workers, distMode: *distMode,
		replicaOf: *replicaOf, syncEvery: *syncEvery,
		shard: *shard, checkpoints: *checkpoints,
		slowQuery: *slowQuery, slowQueryDir: *slowDir, traceDir: *traceDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wavehistd:", err)
		os.Exit(1)
	}
	obs.ServeDebug(*debugAddr, log.Printf)
	if rep != nil {
		rep.Start()
		log.Printf("wavehistd: read replica following %s (pull every %s)", *replicaOf, *syncEvery)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("wavehistd: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "wavehistd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Print("wavehistd: shutting down")
		if rep != nil {
			rep.Stop()
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			srv.Close()
		}
		// Cancel running build jobs and wait for their goroutines so
		// shutdown strands nothing.
		s.Close()
	}
}

// daemonConfig is the resolved flag set.
type daemonConfig struct {
	addr, snapshots    string
	republish          int
	demo               bool
	workers            int
	distMode           bool
	replicaOf          string
	syncEvery          time.Duration
	shard, checkpoints string
	slowQuery          time.Duration
	slowQueryDir       string
	traceDir           string
}

// newDaemon assembles the HTTP server (split from main so tests can run
// it on a loopback listener).
func newDaemon(addr, snapshots string, republish int, demo bool) (*http.Server, error) {
	srv, _, err := newDaemonDist(addr, snapshots, republish, demo, 0, false)
	return srv, err
}

// newDaemonDist additionally configures the distributed-build
// coordinator: workers > 0 spawns an in-process loopback fleet; distMode
// accepts remote waveworker registrations. Either enables
// "distributed": true builds and the /dist/v1/* endpoints.
func newDaemonDist(addr, snapshots string, republish int, demo bool, workers int, distMode bool) (*http.Server, *serve.Server, error) {
	srv, s, _, err := newDaemonCfg(daemonConfig{
		addr: addr, snapshots: snapshots, republish: republish, demo: demo,
		workers: workers, distMode: distMode,
	})
	return srv, s, err
}

// newDaemonCfg is the full assembly: coordinator (with optional
// checkpoint directory), serving layer (optionally read-only), and — in
// -replica-of mode — the follower that keeps the registry synced to a
// primary. The caller starts/stops the returned replica around the HTTP
// server's lifetime.
func newDaemonCfg(c daemonConfig) (*http.Server, *serve.Server, *ha.Replica, error) {
	var coord *dist.Coordinator
	switch {
	case c.workers > 0:
		// Loopback fleets don't heartbeat: leave expiry off. Remote
		// workers can still join via the HTTP fallback transport.
		coord, _ = dist.NewLoopbackCluster(c.workers, 0, dist.Config{CheckpointDir: c.checkpoints, TraceDir: c.traceDir})
		log.Printf("wavehistd: distributed builds over %d in-process workers", c.workers)
	case c.distMode:
		coord = dist.NewCoordinator(dist.NewHTTPTransport(), dist.Config{
			HeartbeatTimeout: 15 * time.Second,
			CheckpointDir:    c.checkpoints,
			TraceDir:         c.traceDir,
		})
		log.Print("wavehistd: accepting waveworker registrations on /dist/v1/register")
	}
	s, err := serve.NewServer(serve.Config{
		SnapshotDir:        c.snapshots,
		RepublishEvery:     c.republish,
		Coordinator:        coord,
		ReadOnly:           c.replicaOf != "",
		Shard:              c.shard,
		SlowQueryThreshold: c.slowQuery,
		SlowQueryDir:       c.slowQueryDir,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if c.demo {
		if err := bootstrapDemo(s); err != nil {
			return nil, nil, nil, fmt.Errorf("demo bootstrap: %w", err)
		}
	}
	var rep *ha.Replica
	if c.replicaOf != "" {
		rep = ha.NewReplica(s, c.replicaOf, c.syncEvery)
	}
	return &http.Server{
		Addr:              c.addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}, s, rep, nil
}

// bootstrapDemo registers a Zipf dataset and publishes a histogram so a
// fresh daemon answers queries immediately.
func bootstrapDemo(s *serve.Server) error {
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 18, Domain: 1 << 12, Alpha: 1.1, Seed: 42,
	})
	if err != nil {
		return err
	}
	if err := s.RegisterDataset("demo", ds); err != nil {
		return err
	}
	res, err := wavelethist.Build(ds, wavelethist.TwoLevelS, wavelethist.Options{K: 30, Seed: 42})
	if err != nil {
		return err
	}
	_, err = s.Registry().Publish("demo", res.Histogram)
	return err
}

// serveOn is a test hook: serve on an existing listener.
func serveOn(srv *http.Server, ln net.Listener) error { return srv.Serve(ln) }
