package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"wavelethist/internal/obs"
)

// TestDaemonServesDemo boots the daemon on a loopback listener with the
// demo bootstrap and checks the full query surface end to end.
func TestDaemonServesDemo(t *testing.T) {
	srv, err := newDaemon("127.0.0.1:0", "", 256, true)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go serveOn(srv, ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) map[string]any {
		t.Helper()
		var resp *http.Response
		for i := 0; ; i++ {
			resp, err = http.Get(base + path)
			if err == nil {
				break
			}
			if i > 50 {
				t.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		var out map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return out
	}

	if h := get("/healthz"); h["ok"] != true {
		t.Fatalf("healthz: %v", h)
	}
	p := get("/v1/hist/demo/point?key=1")
	if _, ok := p["estimate"].(float64); !ok {
		t.Fatalf("demo point: %v", p)
	}
	r := get("/v1/hist/demo/range?lo=0&hi=4095")
	// The full-domain range estimate of a 2^18-record dataset must be
	// close to the record count (w[0] carries the total mass).
	if est := r["estimate"].(float64); est < float64(1<<17) {
		t.Fatalf("demo full-range estimate = %v, want ~%d", est, 1<<18)
	}
	list := get("/v1/hist")
	if fmt.Sprint(list["registry_version"]) == "0" {
		t.Fatalf("demo bootstrap did not publish: %v", list)
	}
}

// TestDaemonDistributedBuild boots the daemon with -workers 2 and runs a
// distributed build end to end through the HTTP API.
func TestDaemonDistributedBuild(t *testing.T) {
	srv, s, err := newDaemonDist("127.0.0.1:0", "", 256, false, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go serveOn(srv, ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	post := func(path, body string, wantCode int) map[string]any {
		t.Helper()
		var resp *http.Response
		for i := 0; ; i++ {
			resp, err = http.Post(base+path, "application/json", strings.NewReader(body))
			if err == nil {
				break
			}
			if i > 50 {
				t.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("POST %s = %d: %s", path, resp.StatusCode, raw)
		}
		var out map[string]any
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return out
	}

	post("/v1/datasets", `{"name":"z","kind":"zipf","records":16384,"domain":1024,"alpha":1.1,"seed":9}`, http.StatusCreated)
	b := post("/v1/build", `{"name":"h","dataset":"z","method":"Send-V","k":20,"seed":9,"distributed":true}`, http.StatusAccepted)
	jobURL := fmt.Sprint(b["status_url"])

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + jobURL)
		if err != nil {
			t.Fatal(err)
		}
		var jv map[string]any
		json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if jv["state"] == "done" {
			if jv["mode"] != "distributed" {
				t.Fatalf("job mode: %v", jv)
			}
			if wb, _ := jv["wire_bytes"].(float64); wb <= 0 {
				t.Fatalf("no wire bytes measured: %v", jv)
			}
			break
		}
		if jv["state"] == "failed" || jv["state"] == "canceled" {
			t.Fatalf("job failed: %v", jv)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: %v", jv)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Fleet listing is mounted.
	resp, err := http.Get(base + "/dist/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wl map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&wl); err != nil {
		t.Fatal(err)
	}
	if ws, _ := wl["workers"].([]any); len(ws) != 2 {
		t.Fatalf("workers listing: %v", wl)
	}
}

func TestDaemonRejectsBadSnapshotDir(t *testing.T) {
	// A file in place of the snapshot dir must fail startup.
	f := t.TempDir() + "/occupied"
	if err := writeFile(f); err != nil {
		t.Fatal(err)
	}
	if _, err := newDaemon("127.0.0.1:0", f, 0, false); err == nil {
		t.Fatal("newDaemon accepted a file as snapshot dir")
	}
}

func writeFile(path string) error {
	return os.WriteFile(path, []byte("x"), 0o644)
}

// TestDaemonMetricsEndpoint boots the daemon with an in-process worker
// fleet, drives a query and a distributed build, and checks GET /metrics
// serves a lint-clean exposition covering query, build, cache, and
// replication families.
func TestDaemonMetricsEndpoint(t *testing.T) {
	srv, s, err := newDaemonDist("127.0.0.1:0", "", 256, true, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go serveOn(srv, ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	var resp *http.Response
	for i := 0; ; i++ {
		resp, err = http.Get(base + "/v1/hist/demo/point?key=1")
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp.Body.Close()

	mres, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	body, _ := io.ReadAll(mres.Body)
	if mres.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", mres.StatusCode, body)
	}
	fams, err := obs.Lint(string(body))
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, body)
	}
	if err := obs.RequireFamilies(fams,
		"wavehist_query_duration_seconds", "wavehist_queries_total",
		"wavehist_builds_total", "wavehist_registry_version",
		"wavehist_read_only", "wavehist_repl_lag_versions",
		"wavehist_dist_alive_workers", "wavehist_dist_builds_total",
	); err != nil {
		t.Fatal(err)
	}
}
