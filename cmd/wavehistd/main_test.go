package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"testing"
	"time"
)

// TestDaemonServesDemo boots the daemon on a loopback listener with the
// demo bootstrap and checks the full query surface end to end.
func TestDaemonServesDemo(t *testing.T) {
	srv, err := newDaemon("127.0.0.1:0", "", 256, true)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go serveOn(srv, ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) map[string]any {
		t.Helper()
		var resp *http.Response
		for i := 0; ; i++ {
			resp, err = http.Get(base + path)
			if err == nil {
				break
			}
			if i > 50 {
				t.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		var out map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return out
	}

	if h := get("/healthz"); h["ok"] != true {
		t.Fatalf("healthz: %v", h)
	}
	p := get("/v1/hist/demo/point?key=1")
	if _, ok := p["estimate"].(float64); !ok {
		t.Fatalf("demo point: %v", p)
	}
	r := get("/v1/hist/demo/range?lo=0&hi=4095")
	// The full-domain range estimate of a 2^18-record dataset must be
	// close to the record count (w[0] carries the total mass).
	if est := r["estimate"].(float64); est < float64(1<<17) {
		t.Fatalf("demo full-range estimate = %v, want ~%d", est, 1<<18)
	}
	list := get("/v1/hist")
	if fmt.Sprint(list["registry_version"]) == "0" {
		t.Fatalf("demo bootstrap did not publish: %v", list)
	}
}

func TestDaemonRejectsBadSnapshotDir(t *testing.T) {
	// A file in place of the snapshot dir must fail startup.
	f := t.TempDir() + "/occupied"
	if err := writeFile(f); err != nil {
		t.Fatal(err)
	}
	if _, err := newDaemon("127.0.0.1:0", f, 0, false); err == nil {
		t.Fatal("newDaemon accepted a file as snapshot dir")
	}
}

func writeFile(path string) error {
	return os.WriteFile(path, []byte("x"), 0o644)
}
