// Command wavehist builds a wavelet histogram from a binary key dataset
// (as produced by cmd/wavegen) with any of the paper's methods, and
// optionally answers range-selectivity queries against it.
//
// Usage:
//
//	wavehist -in data.bin -u 65536 -method TwoLevel-S -k 30
//	wavehist -in data.bin -u 65536 -method H-WTopk -query 1000:2000
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wavelethist"
)

func main() {
	var (
		in         = flag.String("in", "", "input binary key file (required)")
		u          = flag.Int64("u", 1<<16, "key domain size (power of two)")
		method     = flag.String("method", "TwoLevel-S", "construction method: Send-V | Send-Coef | H-WTopk | Basic-S | Improved-S | TwoLevel-S | Send-Sketch")
		k          = flag.Int("k", 30, "number of retained coefficients")
		eps        = flag.Float64("epsilon", 2e-3, "sampling error parameter")
		chunk      = flag.Int64("chunk", 64<<10, "simulated HDFS chunk (split) size")
		seed       = flag.Uint64("seed", 1, "random seed")
		recordSize = flag.Int("record-size", 4, "record size in bytes of the input file")
		query      = flag.String("query", "", "range query lo:hi (may repeat, comma-separated)")
		showCoefs  = flag.Bool("coefs", false, "print the retained coefficients")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "wavehist: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *u, *method, *k, *eps, *chunk, *seed, *recordSize, *query, *showCoefs); err != nil {
		fmt.Fprintln(os.Stderr, "wavehist:", err)
		os.Exit(1)
	}
}

func run(in string, u int64, method string, k int, eps float64, chunk int64,
	seed uint64, recordSize int, query string, showCoefs bool) error {
	keys, err := loadKeys(in, recordSize)
	if err != nil {
		return err
	}
	ds, err := wavelethist.NewDatasetFromKeys(keys, wavelethist.KeysOptions{
		Domain:     u,
		RecordSize: recordSize,
		ChunkSize:  chunk,
	})
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d records, domain %d, %d splits\n",
		ds.NumRecords(), ds.Domain(), ds.NumSplits(0))

	res, err := wavelethist.Build(ds, wavelethist.Method(method), wavelethist.Options{
		K: k, Epsilon: eps, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("method: %s (exact: %v)\n", method, wavelethist.Method(method).Exact())
	fmt.Printf("rounds: %d  communication: %d bytes  records scanned: %d/%d\n",
		res.Rounds, res.CommBytes, res.RecordsRead, ds.NumRecords())
	fmt.Printf("simulated cluster time: %.1fs  (local wall time: %v)\n",
		res.SimulatedSeconds(), res.WallTime.Round(1000000))

	if showCoefs {
		fmt.Println("coefficients (largest magnitude first):")
		for _, c := range res.Histogram.Coefficients() {
			fmt.Printf("  w[%d] = %+.4f\n", c.Index, c.Value)
		}
	}

	if query != "" {
		// Warn when the total-average coefficient w[0] did not make the
		// top-k: every detail basis vector sums to zero over its full
		// support, so wide-range estimates are then biased toward zero.
		// (Best k-term selection optimizes SSE, not range sums; raise -k
		// until w[0] is retained for selectivity workloads.)
		hasAvg := false
		for _, c := range res.Histogram.Coefficients() {
			if c.Index == 0 {
				hasAvg = true
				break
			}
		}
		if !hasAvg {
			fmt.Println("note: w[0] (total mass) not in the top-k; wide-range estimates will be biased low — consider a larger -k")
		}
		for _, q := range strings.Split(query, ",") {
			lo, hi, err := parseRange(q)
			if err != nil {
				return err
			}
			est := res.Histogram.RangeCount(lo, hi)
			truth := exactRange(keys, lo, hi)
			fmt.Printf("range [%d, %d]: estimated %.0f, exact %d (%.2f%% error)\n",
				lo, hi, est, truth, 100*absErr(est, float64(truth)))
		}
	}
	return nil
}

func loadKeys(path string, recordSize int) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if recordSize < 4 || len(data)%recordSize != 0 {
		return nil, fmt.Errorf("file size %d not a multiple of record size %d", len(data), recordSize)
	}
	n := len(data) / recordSize
	keys := make([]int64, n)
	for i := 0; i < n; i++ {
		rec := data[i*recordSize:]
		if recordSize >= 8 {
			keys[i] = int64(binary.LittleEndian.Uint64(rec))
		} else {
			keys[i] = int64(binary.LittleEndian.Uint32(rec))
		}
	}
	return keys, nil
}

func parseRange(s string) (int64, int64, error) {
	parts := strings.SplitN(strings.TrimSpace(s), ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad range %q (want lo:hi)", s)
	}
	lo, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	hi, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

func exactRange(keys []int64, lo, hi int64) int64 {
	var c int64
	for _, k := range keys {
		if k >= lo && k <= hi {
			c++
		}
	}
	return c
}

func absErr(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return 1
	}
	d := est - truth
	if d < 0 {
		d = -d
	}
	return d / truth
}
