package main

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func TestParseRange(t *testing.T) {
	lo, hi, err := parseRange(" 10:20 ")
	if err != nil || lo != 10 || hi != 20 {
		t.Fatalf("parseRange = %d, %d, %v", lo, hi, err)
	}
	for _, bad := range []string{"", "10", "a:b", "10:"} {
		if _, _, err := parseRange(bad); err == nil {
			t.Errorf("parseRange(%q) accepted", bad)
		}
	}
}

func TestExactRange(t *testing.T) {
	keys := []int64{1, 5, 5, 9, 100}
	if got := exactRange(keys, 2, 9); got != 3 {
		t.Errorf("exactRange = %d, want 3", got)
	}
	if got := exactRange(keys, 200, 300); got != 0 {
		t.Errorf("exactRange = %d, want 0", got)
	}
}

func TestAbsErr(t *testing.T) {
	if absErr(90, 100) != 0.1 {
		t.Errorf("absErr = %v", absErr(90, 100))
	}
	if absErr(0, 0) != 0 || absErr(5, 0) != 1 {
		t.Error("zero-truth handling wrong")
	}
}

func TestLoadKeys(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.bin")
	want := []int64{7, 0, 1 << 20}
	buf := make([]byte, 4*len(want))
	for i, k := range want {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(k))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadKeys(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("key %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Wide records.
	buf8 := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf8, 1<<40)
	binary.LittleEndian.PutUint64(buf8[8:], 3)
	path8 := filepath.Join(dir, "k8.bin")
	os.WriteFile(path8, buf8, 0o644)
	got8, err := loadKeys(path8, 8)
	if err != nil || got8[0] != 1<<40 || got8[1] != 3 {
		t.Fatalf("8-byte keys: %v, %v", got8, err)
	}
	// Misaligned file.
	if _, err := loadKeys(path, 3); err == nil {
		t.Error("accepted record size 3")
	}
	if _, err := loadKeys(filepath.Join(dir, "missing"), 4); err == nil {
		t.Error("accepted missing file")
	}
}

func TestEndToEndRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	buf := make([]byte, 0, 4*4096)
	for i := 0; i < 4096; i++ {
		var rec [4]byte
		binary.LittleEndian.PutUint32(rec[:], uint32(i%64))
		buf = append(buf, rec[:]...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 64, "H-WTopk", 70, 1e-2, 1024, 1, 4, "0:63", true); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 64, "nope", 10, 1e-2, 1024, 1, 4, "", false); err == nil {
		t.Error("accepted unknown method")
	}
}
