// Command waverouter fronts a sharded, replicated wavehistd cluster: it
// routes per-histogram requests to the shard owning the name (consistent
// hashing, so every router agrees without coordination), retries reads
// against a shard's replicas when its primary is down, and fans
// list/stats/cross-shard batch requests out over the whole fleet.
//
// Topology is given with -shards: shards are separated by ';', and
// within a shard the first URL is the primary, the rest read replicas.
//
// Usage:
//
//	wavehistd -addr :8081 -shard s0                      # shard 0 primary
//	wavehistd -addr :8082 -replica-of http://localhost:8081
//	wavehistd -addr :8083 -shard s1                      # shard 1 primary
//	waverouter -addr :8080 \
//	  -shards 'http://localhost:8081,http://localhost:8082;http://localhost:8083'
//
// Then query the cluster through the router:
//
//	curl localhost:8080/v1/hist
//	curl 'localhost:8080/v1/hist/demo/point?key=42'
//	curl -d '{"queries":[{"name":"a","op":"point","key":7},{"name":"b","op":"range","lo":0,"hi":99}]}' \
//	     localhost:8080/v1/query
//	curl localhost:8080/v1/router                        # topology + failover counters
//
// With -probe-every the router becomes self-healing: it probes every
// target's /healthz, marks primaries down after -probe-fails consecutive
// failures, auto-promotes the most caught-up replica with an epoch
// fencing token, and demotes a resurrected old primary read-only before
// it can split the write lineage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wavelethist/ha"
	"wavelethist/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		shards       = flag.String("shards", "", "cluster topology: shards separated by ';', URLs within a shard by ',' (first = primary, rest = replicas)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off)")
		coalesceWait = flag.Duration("coalesce-wait", 250*time.Microsecond, "merge single-query GETs for the same histogram arriving within this window into one vectorized shard batch (0 = off)")
		coalesceMax  = flag.Int("coalesce-max", 256, "dispatch a coalesced batch immediately once it holds this many queries")
		readTimeout  = flag.Duration("read-timeout", 2*time.Second, "deadline for proxied reads (point/range/batch/stats/metrics)")
		writeTimeout = flag.Duration("write-timeout", 60*time.Second, "deadline for proxied mutations (updates/datasets/build)")
		probeEvery   = flag.Duration("probe-every", 0, "health-probe every shard target on this interval and auto-promote the most caught-up replica when a primary dies (0 = static topology, no probing)")
		probeFails   = flag.Int("probe-fails", 3, "consecutive probe failures before a target is marked down")
		noFailover   = flag.Bool("no-auto-failover", false, "probe and report health (with -probe-every) but never promote or demote")
	)
	flag.Parse()

	rt, err := newRouter(*shards, ha.RouterConfig{
		CoalesceWait:       *coalesceWait,
		CoalesceMax:        *coalesceMax,
		ReadTimeout:        *readTimeout,
		MutationTimeout:    *writeTimeout,
		ProbeInterval:      *probeEvery,
		ProbeFailThreshold: *probeFails,
		NoAutoFailover:     *noFailover,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "waverouter:", err)
		os.Exit(1)
	}
	defer rt.Close()
	obs.ServeDebug(*debugAddr, log.Printf)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("waverouter: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "waverouter:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Print("waverouter: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			srv.Close()
		}
	}
}

// newRouter parses the -shards topology into a ha.Router. Shard IDs are
// s0, s1, … in flag order, so placement is stable as long as the flag
// lists shards in the same order on every router.
func newRouter(spec string, cfg ha.RouterConfig) (*ha.Router, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-shards is required (e.g. 'http://p1,http://r1;http://p2')")
	}
	var shards []ha.Shard
	for i, group := range strings.Split(spec, ";") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		var urls []string
		for _, u := range strings.Split(group, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			continue
		}
		shards = append(shards, ha.Shard{
			ID:       fmt.Sprintf("s%d", i),
			Primary:  urls[0],
			Replicas: urls[1:],
		})
	}
	return ha.NewRouterConfig(shards, cfg)
}
