package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"wavelethist"
	"wavelethist/ha"
	"wavelethist/internal/obs"
	"wavelethist/serve"
)

// TestNewRouterParsesTopology checks the -shards spec parser: ';' between
// shards, ',' between a shard's primary and replicas, whitespace ignored.
func TestNewRouterParsesTopology(t *testing.T) {
	rt, err := newRouter("http://p1, http://r1 ; http://p2", ha.RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sh := rt.Shard("anything")
	if sh == nil || sh.Primary == "" {
		t.Fatalf("no shard resolved: %+v", sh)
	}
	if _, err := newRouter("  ", ha.RouterConfig{}); err == nil {
		t.Fatal("empty -shards accepted")
	}
	if _, err := newRouter(";;;", ha.RouterConfig{}); err == nil {
		t.Fatal("spec with no shards accepted")
	}
}

// TestRouterMetricsEndpoint fronts one real shard with the router and
// checks routed traffic shows up in the router's GET /metrics exposition
// (per-route latency histograms plus the forwarding counters).
func TestRouterMetricsEndpoint(t *testing.T) {
	s, err := serve.NewServer(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 12, Domain: 1 << 10, Alpha: 1.1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := wavelethist.Build(ds, wavelethist.TwoLevelS, wavelethist.Options{K: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Publish("demo", res.Histogram); err != nil {
		t.Fatal(err)
	}
	shardSrv := httptest.NewServer(s)
	defer shardSrv.Close()

	rt, err := newRouter(shardSrv.URL, ha.RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()

	for _, path := range []string{"/v1/hist/demo/point?key=1", "/v1/hist", "/v1/stats"} {
		resp, err := http.Get(rtSrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}

	mres, err := http.Get(rtSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	body, _ := io.ReadAll(mres.Body)
	if mres.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", mres.StatusCode, body)
	}
	fams, err := obs.Lint(string(body))
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, body)
	}
	if err := obs.RequireFamilies(fams,
		"waverouter_request_duration_seconds", "waverouter_requests_total",
		"waverouter_proxied_total", "waverouter_failovers_total", "waverouter_shards",
	); err != nil {
		t.Fatal(err)
	}
	var pointCount float64
	for _, sm := range fams["waverouter_requests_total"].Samples {
		if sm.Labels["route"] == "point" {
			pointCount = sm.Value
		}
	}
	if pointCount < 1 {
		t.Errorf("waverouter_requests_total{route=point} = %v, want >= 1", pointCount)
	}
	var proxied float64
	for _, sm := range fams["waverouter_proxied_total"].Samples {
		proxied = sm.Value
	}
	if proxied < 3 {
		t.Errorf("waverouter_proxied_total = %v, want >= 3", proxied)
	}

	// The topology endpoint still reports the raw counters.
	tres, err := http.Get(rtSrv.URL + "/v1/router")
	if err != nil {
		t.Fatal(err)
	}
	defer tres.Body.Close()
	var topo struct {
		Proxied uint64 `json:"proxied"`
	}
	if err := json.NewDecoder(tres.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	if topo.Proxied < 3 {
		t.Errorf("topology proxied = %d, want >= 3", topo.Proxied)
	}
}
