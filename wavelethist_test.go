package wavelethist

import (
	"math"
	"testing"
)

func zipfDS(t testing.TB, n, u int64) *Dataset {
	t.Helper()
	ds, err := NewZipfDataset(ZipfOptions{
		Records: n, Domain: u, Alpha: 1.1, ChunkSize: 2048, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildAllMethods(t *testing.T) {
	ds := zipfDS(t, 50000, 1<<10)
	exact := ds.ExactFrequencies()
	var energy float64
	for _, c := range exact {
		energy += c * c
	}
	for _, m := range Methods() {
		res, err := Build(ds, m, Options{K: 20, Epsilon: 0.005, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Histogram.K() == 0 {
			t.Fatalf("%s: empty histogram", m)
		}
		if res.CommBytes <= 0 {
			t.Errorf("%s: no communication recorded", m)
		}
		if res.SimulatedSeconds() <= 0 {
			t.Errorf("%s: no simulated time", m)
		}
		sse := res.Histogram.SSE(exact)
		if sse >= energy {
			t.Errorf("%s: SSE %v >= energy %v", m, sse, energy)
		}
		wantRounds := 1
		if m == HWTopk {
			wantRounds = 3
		}
		if res.Rounds != wantRounds {
			t.Errorf("%s: rounds = %d, want %d", m, res.Rounds, wantRounds)
		}
	}
}

func TestExactMethodsAgree(t *testing.T) {
	ds := zipfDS(t, 30000, 1<<10)
	opts := Options{K: 15, Seed: 5}
	var ref []Coefficient
	for _, m := range []Method{SendV, SendCoef, HWTopk} {
		if !m.Exact() {
			t.Fatalf("%s should be exact", m)
		}
		res, err := Build(ds, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		cs := res.Histogram.Coefficients()
		if ref == nil {
			ref = cs
			continue
		}
		if len(cs) != len(ref) {
			t.Fatalf("%s: %d coefficients, ref %d", m, len(cs), len(ref))
		}
		for i := range cs {
			if math.Abs(math.Abs(cs[i].Value)-math.Abs(ref[i].Value)) > 1e-9 {
				t.Errorf("%s: coefficient %d differs from Send-V", m, i)
			}
		}
	}
	if TwoLevelS.Exact() {
		t.Error("TwoLevel-S claims to be exact")
	}
}

func TestRangeCountAccuracy(t *testing.T) {
	ds := zipfDS(t, 100000, 1<<12)
	exact := ds.ExactFrequencies()
	res, err := Build(ds, HWTopk, Options{K: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wide ranges should be estimated within a few percent of truth.
	for _, r := range [][2]int64{{0, 1<<12 - 1}, {0, 2047}, {1024, 3071}} {
		var truth float64
		for x, c := range exact {
			if x >= r[0] && x <= r[1] {
				truth += c
			}
		}
		got := res.Histogram.RangeCount(r[0], r[1])
		// A k-term histogram is lossy; wide ranges on permuted Zipf data
		// should still land within ~30% (the paper's use case is coarse
		// selectivity estimation).
		if truth > 1000 && math.Abs(got-truth) > 0.3*truth {
			t.Errorf("range [%d,%d]: estimate %v, truth %v", r[0], r[1], got, truth)
		}
	}
	// Full range equals n exactly for an exact method over full k? Not
	// necessarily (k terms), but must be close.
	full := res.Histogram.RangeCount(0, ds.Domain()-1)
	if math.Abs(full-float64(ds.NumRecords())) > 0.05*float64(ds.NumRecords()) {
		t.Errorf("full-range count %v, n = %d", full, ds.NumRecords())
	}
}

func TestPointEstimateHeavyKey(t *testing.T) {
	ds := zipfDS(t, 100000, 1<<12)
	exact := ds.ExactFrequencies()
	var heavy int64
	var heavyC float64
	for x, c := range exact {
		if c > heavyC {
			heavy, heavyC = x, c
		}
	}
	res, err := Build(ds, HWTopk, Options{K: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Histogram.PointEstimate(heavy)
	if math.Abs(got-heavyC) > 0.3*heavyC {
		t.Errorf("heaviest key estimate %v, truth %v", got, heavyC)
	}
}

func TestDatasetAccessors(t *testing.T) {
	ds := zipfDS(t, 1000, 1<<8)
	if ds.SizeBytes() != 4000 {
		t.Errorf("SizeBytes = %d, want 4000", ds.SizeBytes())
	}
	if got := ds.NumSplits(400); got != 10 {
		t.Errorf("NumSplits(400) = %d, want 10", got)
	}
	if ds.NumSplits(0) < 1 {
		t.Error("NumSplits(0) < 1")
	}
}

func TestDatasetFromKeys(t *testing.T) {
	keys := []int64{1, 1, 1, 5, 9, 9, 100}
	ds, err := NewDatasetFromKeys(keys, KeysOptions{Domain: 128, ChunkSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRecords() != 7 {
		t.Fatalf("records = %d", ds.NumRecords())
	}
	exact := ds.ExactFrequencies()
	if exact[1] != 3 || exact[9] != 2 || exact[100] != 1 {
		t.Errorf("frequencies = %v", exact)
	}
	// With k large enough to retain every non-zero coefficient (4 keys ×
	// 8 levels), reconstruction is exact.
	res, err := Build(ds, SendV, Options{K: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Histogram.PointEstimate(1); math.Abs(got-3) > 1e-6 {
		t.Errorf("PointEstimate(1) = %v, want 3", got)
	}
}

func TestDatasetFromKeysValidation(t *testing.T) {
	if _, err := NewDatasetFromKeys(nil, KeysOptions{Domain: 16}); err == nil {
		t.Error("accepted empty keys")
	}
	if _, err := NewDatasetFromKeys([]int64{1}, KeysOptions{Domain: 15}); err == nil {
		t.Error("accepted non-power-of-two domain")
	}
	if _, err := NewDatasetFromKeys([]int64{99}, KeysOptions{Domain: 16}); err == nil {
		t.Error("accepted out-of-domain key")
	}
}

func TestWorldCupDataset(t *testing.T) {
	ds, err := NewWorldCupDataset(WorldCupOptions{Records: 20000, Seed: 3, ChunkSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Domain() != 1<<20 {
		t.Errorf("domain = %d, want 2^20", ds.Domain())
	}
	res, err := Build(ds, TwoLevelS, Options{K: 20, Epsilon: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram.K() == 0 {
		t.Error("empty histogram on WorldCup data")
	}
}

func TestOptionsPassthrough(t *testing.T) {
	ds := zipfDS(t, 20000, 1<<10)
	// SketchBytes controls Send-Sketch's shipped entries.
	small, err := Build(ds, SendSketch, Options{K: 10, Seed: 1, SketchBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(ds, SendSketch, Options{K: 10, Seed: 1, SketchBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if small.CommBytes >= big.CommBytes {
		t.Errorf("smaller sketch budget should ship less: %d vs %d",
			small.CommBytes, big.CommBytes)
	}
	// DisableCombine inflates Basic-S's pair count.
	on, err := Build(ds, BasicS, Options{K: 10, Epsilon: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Build(ds, BasicS, Options{K: 10, Epsilon: 0.01, Seed: 1, DisableCombine: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.CommBytes >= off.CommBytes {
		t.Errorf("combine should reduce Basic-S comm: %d vs %d", on.CommBytes, off.CommBytes)
	}
	// SplitSize controls m.
	coarse, err := Build(ds, TwoLevelS, Options{K: 10, Epsilon: 0.01, Seed: 1, SplitSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Build(ds, TwoLevelS, Options{K: 10, Epsilon: 0.01, Seed: 1, SplitSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if fine.CommBytes <= coarse.CommBytes {
		t.Errorf("more splits should ship more: %d vs %d", fine.CommBytes, coarse.CommBytes)
	}
}

func TestSimulatedTimeBandwidth(t *testing.T) {
	ds := zipfDS(t, 50000, 1<<12)
	res, err := Build(ds, SendV, Options{K: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	slow := res.SimulatedSecondsAt(0.1)
	fast := res.SimulatedSecondsAt(1.0)
	if slow <= fast {
		t.Errorf("10%% bandwidth (%v) should be slower than 100%% (%v)", slow, fast)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, SendV, Options{}); err == nil {
		t.Error("accepted nil dataset")
	}
	ds := zipfDS(t, 100, 1<<6)
	if _, err := Build(ds, Method("nope"), Options{}); err == nil {
		t.Error("accepted unknown method")
	}
}

func TestBuild2D(t *testing.T) {
	const side = 16
	xs := make([]int64, 0, 4000)
	ys := make([]int64, 0, 4000)
	for i := 0; i < 4000; i++ {
		xs = append(xs, int64(i%side))
		ys = append(ys, int64((i*7)%side))
	}
	ds, err := NewDataset2DFromPairs(xs, ys, side, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Build2D(ds, SendV2D, Options{K: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := Build2D(ds, HWTopk2D, Options{K: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ec, hc := exact.Histogram.rep.Coefs, hw.Histogram.rep.Coefs
	if len(ec) != len(hc) {
		t.Fatalf("coefficient counts differ: %d vs %d", len(ec), len(hc))
	}
	for i := range ec {
		if math.Abs(math.Abs(ec[i].Value)-math.Abs(hc[i].Value)) > 1e-9 {
			t.Errorf("2D coefficient %d differs between exact methods", i)
		}
	}
	if _, err := Build2D(ds, TwoLevelS2D, Options{K: 10, Epsilon: 0.02, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build2D(ds, Method2D("bad"), Options{}); err == nil {
		t.Error("accepted unknown 2D method")
	}
}

func TestDataset2DValidation(t *testing.T) {
	if _, err := NewDataset2DFromPairs([]int64{1}, []int64{1, 2}, 16, 0, 1); err == nil {
		t.Error("accepted mismatched slices")
	}
	if _, err := NewDataset2DFromPairs([]int64{1}, []int64{1}, 15, 0, 1); err == nil {
		t.Error("accepted non-power-of-two side")
	}
	if _, err := NewDataset2DFromPairs([]int64{99}, []int64{1}, 16, 0, 1); err == nil {
		t.Error("accepted out-of-grid pair")
	}
}
