package wavelethist

import (
	"context"
	"fmt"

	"wavelethist/dist"
	"wavelethist/internal/core"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
)

// Multi-dimensional wavelet histograms (the paper's Sections 3-4
// extensions). 2D datasets key records by packed pairs x·u + y over the
// grid [0, u)²; the exact and sampling methods carry over by linearity.

// Method2D selects a 2D construction algorithm.
type Method2D string

// Supported 2D methods.
const (
	// SendV2D is the exact ship-everything baseline in 2D.
	SendV2D Method2D = "Send-V-2D"
	// HWTopk2D is the exact three-round algorithm over 2D coefficients.
	HWTopk2D Method2D = "H-WTopk-2D"
	// TwoLevelS2D is two-level sampling over packed 2D keys.
	TwoLevelS2D Method2D = "TwoLevel-S-2D"
)

// Dataset2D is a grid-keyed dataset.
type Dataset2D struct {
	file *hdfs.File
	side int64
	// spec is the deterministic packed-key recipe distributed builds ship
	// to workers (nil when the dataset is not distributable).
	spec *dist.DatasetSpec
}

// Side returns the grid side length u (domain is [0, u)²).
func (d *Dataset2D) Side() int64 { return d.side }

// NumRecords returns the number of records.
func (d *Dataset2D) NumRecords() int64 { return d.file.NumRecords }

// Spec returns the dataset's generation recipe — what BuildDistributed2D
// ships to workers so they can materialize an identical local copy.
func (d *Dataset2D) Spec() *dist.DatasetSpec { return d.spec }

// NewDataset2DFromPairs loads (x, y) key pairs over the [0, side)² grid.
func NewDataset2DFromPairs(xs, ys []int64, side int64, chunkSize int64, seed uint64) (*Dataset2D, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil, fmt.Errorf("wavelethist: need equal-length non-empty coordinate slices")
	}
	if !wavelet.IsPowerOfTwo(side) {
		return nil, fmt.Errorf("wavelethist: grid side %d is not a power of two", side)
	}
	keys := make([]int64, len(xs))
	for i := range xs {
		if xs[i] < 0 || xs[i] >= side || ys[i] < 0 || ys[i] >= side {
			return nil, fmt.Errorf("wavelethist: pair (%d, %d) outside [0, %d)²", xs[i], ys[i], side)
		}
		keys[i] = wavelet.Key2D(xs[i], ys[i], side)
	}
	return newDataset2DFromKeys(keys, side, chunkSize, seed)
}

// newDataset2DFromKeys materializes a packed-key 2D dataset through its
// distributable spec, so the local file and every worker's copy have
// identical chunk and split structure by construction.
func newDataset2DFromKeys(keys []int64, side, chunkSize int64, seed uint64) (*Dataset2D, error) {
	spec := dist.DatasetSpec{
		Kind:       "keys",
		Domain:     side * side,
		RecordSize: 8, // packed keys need 8-byte records
		ChunkSize:  chunkSize,
		Seed:       seed,
		Keys:       keys,
	}.Normalize()
	file, _, err := spec.Materialize()
	if err != nil {
		return nil, err
	}
	return &Dataset2D{file: file, side: side, spec: &spec}, nil
}

// ExactGrid scans the dataset and returns the ground-truth u×u frequency
// grid (for accuracy evaluation; the algorithms never call this).
func (d *Dataset2D) ExactGrid() [][]float64 {
	grid := make([][]float64, d.side)
	for i := range grid {
		grid[i] = make([]float64, d.side)
	}
	for _, split := range d.file.Splits(0) {
		r := hdfs.NewSequentialReader(split)
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			x, y := wavelet.SplitKey2D(rec.Key, d.side)
			grid[x][y]++
		}
	}
	return grid
}

// Coarsen projects the dataset onto the smaller grid [0, side/t)² by
// integer-dividing both coordinates by t (a power of two) — the paper's
// remedy for sparse high-dimensional data (Section 4: "lower the
// granularity of the data, i.e., project the data to a smaller grid
// [u/t]^d ... so as to increase the density"). Estimates from the coarse
// histogram apply to t×t cell blocks.
func (d *Dataset2D) Coarsen(t int64) (*Dataset2D, error) {
	if t < 1 || !wavelet.IsPowerOfTwo(t) {
		return nil, fmt.Errorf("wavelethist: coarsening factor %d must be a power of two", t)
	}
	if t >= d.side {
		return nil, fmt.Errorf("wavelethist: coarsening factor %d >= grid side %d", t, d.side)
	}
	newSide := d.side / t
	keys := make([]int64, 0, d.file.NumRecords)
	for _, split := range d.file.Splits(0) {
		r := hdfs.NewSequentialReader(split)
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			x, y := wavelet.SplitKey2D(rec.Key, d.side)
			keys = append(keys, wavelet.Key2D(x/t, y/t, newSide))
		}
	}
	return newDataset2DFromKeys(keys, newSide, hdfs.DefaultChunkSize, 0)
}

// Histogram2D is a k-term 2D wavelet histogram.
type Histogram2D struct {
	rep *wavelet.Representation2D
}

// Side returns the grid side length.
func (h *Histogram2D) Side() int64 { return h.rep.U }

// K returns the number of retained coefficients.
func (h *Histogram2D) K() int { return len(h.rep.Coefs) }

// Coefficients returns the retained packed-index coefficients, largest
// magnitude first.
func (h *Histogram2D) Coefficients() []Coefficient {
	cs := make([]wavelet.Coef, len(h.rep.Coefs))
	copy(cs, h.rep.Coefs)
	wavelet.SortCoefsByMagnitude(cs)
	out := make([]Coefficient, len(cs))
	for i, c := range cs {
		out[i] = Coefficient{Index: c.Index, Value: c.Value}
	}
	return out
}

// PointEstimate returns the estimated frequency of cell (x, y) in
// O(log²u): only the cell's error-tree ancestor pairs are evaluated.
// Off-grid cells estimate 0.
func (h *Histogram2D) PointEstimate(x, y int64) float64 { return h.rep.PointEstimate(x, y) }

// BatchPoints answers n cell queries in one shared walk of the 2D error
// tree: queries are sorted by (x, y), each distinct x computes its
// ancestor path once, and every row group is merge-joined instead of
// binary-searched per query. out[i] is bit-identical to
// PointEstimate(xs[i], ys[i]); slice lengths must match.
func (h *Histogram2D) BatchPoints(xs, ys []int64, out []float64) { h.rep.BatchPoints(xs, ys, out) }

// RangeCount estimates the number of records in the rectangle
// [xlo, xhi] × [ylo, yhi] (inclusive) in O(log²u): only the tensor
// products of the two axes' boundary candidates contribute. Bounds are
// clamped to the grid per axis; an empty intersection estimates 0.
func (h *Histogram2D) RangeCount(xlo, xhi, ylo, yhi int64) float64 {
	return h.rep.RangeSum(xlo, xhi, ylo, yhi)
}

// BatchRanges answers n rectangle queries in one shared walk of the 2D
// error tree: out[i] is bit-identical to RangeCount(xlos[i], xhis[i],
// ylos[i], yhis[i]), including the clamp contract. All five slice
// lengths must match.
func (h *Histogram2D) BatchRanges(xlos, xhis, ylos, yhis []int64, out []float64) {
	h.rep.BatchRanges(xlos, xhis, ylos, yhis, out)
}

// BatchPointsParallel is BatchPoints fanned across a bounded worker pool
// over contiguous (x, y)-sorted segments — bit-identical for every
// worker count. workers <= 0 selects an automatic GOMAXPROCS-bounded
// pool; workers == 1 runs the serial sweep.
func (h *Histogram2D) BatchPointsParallel(xs, ys []int64, out []float64, workers int) {
	h.rep.BatchPointsParallel(xs, ys, out, workers)
}

// BatchRangesParallel is BatchRanges fanned across a bounded worker pool
// (see BatchPointsParallel); bit-identical for every worker count.
func (h *Histogram2D) BatchRangesParallel(xlos, xhis, ylos, yhis []int64, out []float64, workers int) {
	h.rep.BatchRangesParallel(xlos, xhis, ylos, yhis, out, workers)
}

// Reconstruct materializes the estimated grid (O(k·u²)).
func (h *Histogram2D) Reconstruct() [][]float64 { return h.rep.Reconstruct() }

// Result2D is a 2D build outcome.
type Result2D struct {
	Histogram *Histogram2D
	CommBytes int64
	Rounds    int
	// WireBytes is the measured RPC traffic of a distributed build (0
	// when simulated); Distributed reports which mode ran.
	WireBytes   int64
	Distributed bool
	// PerRound / CandidateSetSize profile multi-round builds (H-WTopk-2D).
	PerRound         []RoundStat
	CandidateSetSize int
}

// Build2D constructs a 2D wavelet histogram.
func Build2D(d *Dataset2D, method Method2D, opts Options) (*Result2D, error) {
	return Build2DContext(context.Background(), d, method, opts)
}

// Build2DContext is Build2D with cancellation.
func Build2DContext(ctx context.Context, d *Dataset2D, method Method2D, opts Options) (*Result2D, error) {
	if d == nil || d.file == nil {
		return nil, fmt.Errorf("wavelethist: nil dataset")
	}
	p := opts.toParams(d.side)
	var out *core.Output2D
	var err error
	switch method {
	case SendV2D:
		out, err = core.NewSendV2D().Run(ctx, d.file, p)
	case HWTopk2D:
		out, err = core.NewHWTopk2D().Run(ctx, d.file, p)
	case TwoLevelS2D:
		out, err = core.NewTwoLevelS2D().Run(ctx, d.file, p)
	default:
		return nil, fmt.Errorf("wavelethist: unknown 2D method %q", method)
	}
	if err != nil {
		return nil, err
	}
	return &Result2D{
		Histogram:        &Histogram2D{rep: out.Rep},
		CommBytes:        out.Metrics.TotalCommBytes(),
		Rounds:           out.Metrics.Rounds,
		PerRound:         perRoundStats(out.Metrics, nil),
		CandidateSetSize: out.Metrics.CandidateSetSize,
	}, nil
}

// BuildDistributed2D constructs a 2D wavelet histogram on the worker
// fleet. All three 2D methods are distributable: Send-V-2D and
// TwoLevel-S-2D as one-round jobs (per-split partials merged in split
// order), H-WTopk-2D as the three-round two-sided TPUT exchange. The
// result is bit-identical to Build2D with the same seed.
//
// Caveat: 2D datasets ship as explicit key lists ("keys" recipes), and
// the dist protocol embeds the dataset recipe in every map RPC, so large
// 2D datasets inflate measured wire bytes (workers cache the
// materialized dataset; only the payload is redundant). A one-time
// dataset-install RPC is on the roadmap; until then prefer modest 2D
// datasets for wire-byte comparisons.
func BuildDistributed2D(ctx context.Context, d *Dataset2D, method Method2D, opts Options, coord *dist.Coordinator) (*Result2D, error) {
	if d == nil || d.file == nil {
		return nil, fmt.Errorf("wavelethist: nil dataset")
	}
	if coord == nil {
		return nil, fmt.Errorf("wavelethist: nil coordinator")
	}
	if d.spec == nil {
		return nil, fmt.Errorf("wavelethist: 2D dataset has no distributable spec")
	}
	out, stats, err := coord.Build2D(ctx, *d.spec, d.file, string(method), opts.toParams(d.side))
	if err != nil {
		return nil, err
	}
	return &Result2D{
		Histogram:        &Histogram2D{rep: out.Rep},
		CommBytes:        stats.WireBytes,
		Rounds:           out.Metrics.Rounds,
		WireBytes:        stats.WireBytes,
		Distributed:      true,
		PerRound:         perRoundStats(out.Metrics, stats.PerRound),
		CandidateSetSize: stats.CandidateSetSize,
	}, nil
}
