package wavelethist

import (
	"context"
	"fmt"

	"wavelethist/internal/core"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
)

// Multi-dimensional wavelet histograms (the paper's Sections 3-4
// extensions). 2D datasets key records by packed pairs x·u + y over the
// grid [0, u)²; the exact and sampling methods carry over by linearity.

// Method2D selects a 2D construction algorithm.
type Method2D string

// Supported 2D methods.
const (
	// SendV2D is the exact ship-everything baseline in 2D.
	SendV2D Method2D = "Send-V-2D"
	// HWTopk2D is the exact three-round algorithm over 2D coefficients.
	HWTopk2D Method2D = "H-WTopk-2D"
	// TwoLevelS2D is two-level sampling over packed 2D keys.
	TwoLevelS2D Method2D = "TwoLevel-S-2D"
)

// Dataset2D is a grid-keyed dataset.
type Dataset2D struct {
	fs   *hdfs.FileSystem
	file *hdfs.File
	side int64
}

// Side returns the grid side length u (domain is [0, u)²).
func (d *Dataset2D) Side() int64 { return d.side }

// NumRecords returns the number of records.
func (d *Dataset2D) NumRecords() int64 { return d.file.NumRecords }

// NewDataset2DFromPairs loads (x, y) key pairs over the [0, side)² grid.
func NewDataset2DFromPairs(xs, ys []int64, side int64, chunkSize int64, seed uint64) (*Dataset2D, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil, fmt.Errorf("wavelethist: need equal-length non-empty coordinate slices")
	}
	if !wavelet.IsPowerOfTwo(side) {
		return nil, fmt.Errorf("wavelethist: grid side %d is not a power of two", side)
	}
	if chunkSize == 0 {
		chunkSize = hdfs.DefaultChunkSize
	}
	fs := hdfs.NewFileSystem(15, chunkSize)
	w, err := fs.Create("grid", 8)
	if err != nil {
		return nil, err
	}
	for i := range xs {
		if xs[i] < 0 || xs[i] >= side || ys[i] < 0 || ys[i] >= side {
			return nil, fmt.Errorf("wavelethist: pair (%d, %d) outside [0, %d)²", xs[i], ys[i], side)
		}
		w.Append(wavelet.Key2D(xs[i], ys[i], side))
	}
	return &Dataset2D{fs: fs, file: w.Close(), side: side}, nil
}

// ExactGrid scans the dataset and returns the ground-truth u×u frequency
// grid (for accuracy evaluation; the algorithms never call this).
func (d *Dataset2D) ExactGrid() [][]float64 {
	grid := make([][]float64, d.side)
	for i := range grid {
		grid[i] = make([]float64, d.side)
	}
	for _, split := range d.file.Splits(0) {
		r := hdfs.NewSequentialReader(split)
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			x, y := wavelet.SplitKey2D(rec.Key, d.side)
			grid[x][y]++
		}
	}
	return grid
}

// Coarsen projects the dataset onto the smaller grid [0, side/t)² by
// integer-dividing both coordinates by t (a power of two) — the paper's
// remedy for sparse high-dimensional data (Section 4: "lower the
// granularity of the data, i.e., project the data to a smaller grid
// [u/t]^d ... so as to increase the density"). Estimates from the coarse
// histogram apply to t×t cell blocks.
func (d *Dataset2D) Coarsen(t int64) (*Dataset2D, error) {
	if t < 1 || !wavelet.IsPowerOfTwo(t) {
		return nil, fmt.Errorf("wavelethist: coarsening factor %d must be a power of two", t)
	}
	if t >= d.side {
		return nil, fmt.Errorf("wavelethist: coarsening factor %d >= grid side %d", t, d.side)
	}
	newSide := d.side / t
	fs := hdfs.NewFileSystem(15, hdfs.DefaultChunkSize)
	w, err := fs.Create("grid-coarse", 8)
	if err != nil {
		return nil, err
	}
	for _, split := range d.file.Splits(0) {
		r := hdfs.NewSequentialReader(split)
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			x, y := wavelet.SplitKey2D(rec.Key, d.side)
			w.Append(wavelet.Key2D(x/t, y/t, newSide))
		}
	}
	return &Dataset2D{fs: fs, file: w.Close(), side: newSide}, nil
}

// Histogram2D is a k-term 2D wavelet histogram.
type Histogram2D struct {
	rep *wavelet.Representation2D
}

// Side returns the grid side length.
func (h *Histogram2D) Side() int64 { return h.rep.U }

// K returns the number of retained coefficients.
func (h *Histogram2D) K() int { return len(h.rep.Coefs) }

// PointEstimate returns the estimated frequency of cell (x, y).
func (h *Histogram2D) PointEstimate(x, y int64) float64 { return h.rep.PointEstimate(x, y) }

// Reconstruct materializes the estimated grid (O(k·u²)).
func (h *Histogram2D) Reconstruct() [][]float64 { return h.rep.Reconstruct() }

// Result2D is a 2D build outcome.
type Result2D struct {
	Histogram *Histogram2D
	CommBytes int64
	Rounds    int
}

// Build2D constructs a 2D wavelet histogram.
func Build2D(d *Dataset2D, method Method2D, opts Options) (*Result2D, error) {
	return Build2DContext(context.Background(), d, method, opts)
}

// Build2DContext is Build2D with cancellation.
func Build2DContext(ctx context.Context, d *Dataset2D, method Method2D, opts Options) (*Result2D, error) {
	if d == nil || d.file == nil {
		return nil, fmt.Errorf("wavelethist: nil dataset")
	}
	p := opts.toParams(d.side)
	var out *core.Output2D
	var err error
	switch method {
	case SendV2D:
		out, err = core.NewSendV2D().Run(ctx, d.file, p)
	case HWTopk2D:
		out, err = core.NewHWTopk2D().Run(ctx, d.file, p)
	case TwoLevelS2D:
		out, err = core.NewTwoLevelS2D().Run(ctx, d.file, p)
	default:
		return nil, fmt.Errorf("wavelethist: unknown 2D method %q", method)
	}
	if err != nil {
		return nil, err
	}
	return &Result2D{
		Histogram: &Histogram2D{rep: out.Rep},
		CommBytes: out.Metrics.TotalCommBytes(),
		Rounds:    out.Metrics.Rounds,
	}, nil
}
