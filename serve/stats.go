package serve

import (
	"sync/atomic"
	"time"

	"wavelethist/internal/obs"
)

// OpStats is a lock-free counter/latency accumulator for one operation
// class, backed by an obs.Histogram so p50/p99 come from the same
// buckets /metrics exposes. Safe for concurrent use from any number of
// query goroutines.
//
// Consistency: Add writes the histogram (buckets, sum, histogram count)
// before incrementing count; View loads count before reading the
// histogram. Go's sequentially consistent atomics then guarantee the
// snapshot's nanos cover every operation included in its count, so the
// reported mean can never be computed from fewer nanos than counted ops
// — the torn-read pairing the old two-independent-atomics View had.
type OpStats struct {
	// count is the total operations recorded, including untimed ones
	// (Add with d <= 0, e.g. per-query counts inside batches) that the
	// histogram never sees.
	count atomic.Int64
	hist  obs.Histogram
}

// Start records one operation and returns the function that stops its
// latency clock: defer stats.Point.Start()().
func (o *OpStats) Start() func() {
	t0 := time.Now()
	return func() {
		o.hist.Observe(time.Since(t0))
		o.count.Add(1)
	}
}

// Add records n operations that took a combined d. With d <= 0 only the
// count moves — the operations are tallied but not timed, and they do
// not dilute the latency quantiles.
func (o *OpStats) Add(n int64, d time.Duration) {
	if n <= 0 {
		return
	}
	if d > 0 {
		o.hist.ObserveBatch(n, d)
	}
	o.count.Add(n)
}

// Count returns the total operations recorded.
func (o *OpStats) Count() int64 { return o.count.Load() }

// HistView snapshots the latency histogram (timed operations only) for
// merging into /metrics families.
func (o *OpStats) HistView() obs.HistView { return o.hist.View() }

// View returns a consistent snapshot for reporting (see the type comment
// for the ordering guarantee).
func (o *OpStats) View() OpStatsView {
	n := o.count.Load()
	hv := o.hist.View()
	v := OpStatsView{Count: n}
	if n > 0 {
		v.MeanMicros = float64(hv.SumNanos) / float64(n) / 1e3
	}
	if hv.Count > 0 {
		v.P50Micros = hv.QuantileMicros(0.50)
		v.P95Micros = hv.QuantileMicros(0.95)
		v.P99Micros = hv.QuantileMicros(0.99)
	}
	return v
}

// OpStatsView is the JSON form of OpStats. Count and MeanMicros are the
// pre-existing fields older consumers rely on; the quantiles are
// histogram-derived (log₂ buckets, interpolated) and 0 until the first
// timed operation.
type OpStatsView struct {
	Count      int64   `json:"count"`
	MeanMicros float64 `json:"mean_micros"`
	P50Micros  float64 `json:"p50_micros,omitempty"`
	P95Micros  float64 `json:"p95_micros,omitempty"`
	P99Micros  float64 `json:"p99_micros,omitempty"`
}

// Stats aggregates per-histogram serving counters. The same *Stats is
// carried across republishes of a name, so counts reflect the histogram's
// whole serving lifetime, not just the latest version.
type Stats struct {
	Point        OpStats
	Range        OpStats
	Batch        OpStats // batch requests (each may hold many queries)
	BatchQueries OpStats // individual sub-queries answered inside batches
	Update       OpStats // individual key updates applied
}

// NewStats returns zeroed stats.
func NewStats() *Stats { return &Stats{} }

// View returns the JSON form.
func (s *Stats) View() StatsView {
	return StatsView{
		Point:        s.Point.View(),
		Range:        s.Range.View(),
		Batch:        s.Batch.View(),
		BatchQueries: s.BatchQueries.View(),
		Update:       s.Update.View(),
	}
}

// StatsView is the JSON form of Stats.
type StatsView struct {
	Point        OpStatsView `json:"point"`
	Range        OpStatsView `json:"range"`
	Batch        OpStatsView `json:"batch"`
	BatchQueries OpStatsView `json:"batch_queries"`
	Update       OpStatsView `json:"update"`
}
