package serve

import (
	"sync/atomic"
	"time"
)

// OpStats is a lock-free counter/latency accumulator for one operation
// class. Safe for concurrent use from any number of query goroutines.
type OpStats struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Start records one operation and returns the function that stops its
// latency clock: defer stats.Point.Start()().
func (o *OpStats) Start() func() {
	t0 := time.Now()
	return func() {
		o.count.Add(1)
		o.nanos.Add(int64(time.Since(t0)))
	}
}

// Add records n operations that took a combined d.
func (o *OpStats) Add(n int64, d time.Duration) {
	o.count.Add(n)
	o.nanos.Add(int64(d))
}

// View returns a consistent-enough copy for reporting.
func (o *OpStats) View() OpStatsView {
	n := o.count.Load()
	ns := o.nanos.Load()
	v := OpStatsView{Count: n}
	if n > 0 {
		v.MeanMicros = float64(ns) / float64(n) / 1e3
	}
	return v
}

// OpStatsView is the JSON form of OpStats.
type OpStatsView struct {
	Count      int64   `json:"count"`
	MeanMicros float64 `json:"mean_micros"`
}

// Stats aggregates per-histogram serving counters. The same *Stats is
// carried across republishes of a name, so counts reflect the histogram's
// whole serving lifetime, not just the latest version.
type Stats struct {
	Point        OpStats
	Range        OpStats
	Batch        OpStats // batch requests (each may hold many queries)
	BatchQueries OpStats // individual sub-queries answered inside batches
	Update       OpStats // individual key updates applied
}

// NewStats returns zeroed stats.
func NewStats() *Stats { return &Stats{} }

// View returns the JSON form.
func (s *Stats) View() StatsView {
	return StatsView{
		Point:        s.Point.View(),
		Range:        s.Range.View(),
		Batch:        s.Batch.View(),
		BatchQueries: s.BatchQueries.View(),
		Update:       s.Update.View(),
	}
}

// StatsView is the JSON form of Stats.
type StatsView struct {
	Point        OpStatsView `json:"point"`
	Range        OpStatsView `json:"range"`
	Batch        OpStatsView `json:"batch"`
	BatchQueries OpStatsView `json:"batch_queries"`
	Update       OpStatsView `json:"update"`
}
