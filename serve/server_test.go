package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantCode, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
	}
	return out
}

func postJSON(t *testing.T, url string, req any, wantCode int) map[string]any {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s = %d, want %d: %s", url, resp.StatusCode, wantCode, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("POST %s: bad JSON %q: %v", url, body, err)
	}
	return out
}

func waitForJob(t *testing.T, base, jobURL string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j := getJSON(t, base+jobURL, http.StatusOK)
		switch j["state"] {
		case string(JobDone):
			return j
		case string(JobFailed):
			t.Fatalf("build job failed: %v", j["error"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("build job did not finish in time")
	return nil
}

// TestWavehistdEndToEnd is the daemon acceptance path: create a Zipf
// dataset, launch an async TwoLevel-S build, query point/range/batch,
// stream updates until the maintainer republishes, and watch the
// registry version advance.
func TestWavehistdEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{RepublishEvery: 500})
	base := ts.URL

	// Health before anything is published.
	h := getJSON(t, base+"/healthz", http.StatusOK)
	if h["ok"] != true {
		t.Fatalf("healthz: %v", h)
	}

	// Create the dataset.
	dsResp := postJSON(t, base+"/v1/datasets", DatasetRequest{
		Name: "zipf1", Kind: "zipf", Records: 200000, Domain: 1 << 14, Alpha: 1.1, Seed: 42,
	}, http.StatusCreated)
	if dsResp["records"].(float64) != 200000 {
		t.Fatalf("dataset: %v", dsResp)
	}

	// Async TwoLevel-S build.
	bResp := postJSON(t, base+"/v1/build", BuildRequest{
		Name: "traffic", Dataset: "zipf1", Method: "TwoLevel-S", K: 40, Seed: 7,
	}, http.StatusAccepted)
	job := waitForJob(t, base, bResp["status_url"].(string))
	if job["name"] != "traffic" || job["k"].(float64) != 40 {
		t.Fatalf("job result: %v", job)
	}
	versionAfterBuild := uint64(job["version"].(float64))
	if versionAfterBuild != 1 {
		t.Fatalf("first publish version = %d", versionAfterBuild)
	}

	// Point and range queries.
	p := getJSON(t, base+"/v1/hist/traffic/point?key=5", http.StatusOK)
	if _, ok := p["estimate"].(float64); !ok {
		t.Fatalf("point: %v", p)
	}
	rg := getJSON(t, base+"/v1/hist/traffic/range?lo=0&hi=8191", http.StatusOK)
	est := rg["estimate"].(float64)
	// w[0] is always in the top-k of a skewed frequency vector, so the
	// half-domain range estimate must be a large positive number.
	if est < 10000 {
		t.Fatalf("range estimate implausibly small: %v", est)
	}

	// Batch endpoint: mixed ops, per-query errors isolated. Empty ranges
	// follow the clamp contract (estimate 0, not an error).
	queries := []BatchQuery{
		{Op: "point", Key: 5},
		{Op: "range", Lo: 0, Hi: 8191},
		{Op: "range", Lo: 10, Hi: 3}, // empty range: clamps to estimate 0
		{Op: "point", Key: 1 << 20},  // out of domain
		{Op: "sketch"},               // unknown op
	}
	bt := postJSON(t, base+"/v1/hist/traffic/query", map[string]any{"queries": queries}, http.StatusOK)
	results := bt["results"].([]any)
	if len(results) != len(queries) {
		t.Fatalf("batch returned %d results", len(results))
	}
	if results[0].(map[string]any)["estimate"].(float64) != p["estimate"].(float64) {
		t.Fatal("batch point disagrees with single point")
	}
	if results[1].(map[string]any)["estimate"].(float64) != est {
		t.Fatal("batch range disagrees with single range")
	}
	if r2 := results[2].(map[string]any); r2["error"] != nil || r2["estimate"].(float64) != 0 {
		t.Fatalf("empty range should clamp to estimate 0, got %v", r2)
	}
	for i := 3; i < 5; i++ {
		if results[i].(map[string]any)["error"] == nil {
			t.Fatalf("batch query %d should have errored", i)
		}
	}

	// Stream updates: below the republish threshold nothing republishes...
	ups := make([]KeyUpdate, 100)
	for i := range ups {
		ups[i] = KeyUpdate{Key: int64(i % 50), Delta: 3}
	}
	u1 := postJSON(t, base+"/v1/hist/traffic/updates", map[string]any{"updates": ups}, http.StatusOK)
	if u1["republished"] != false {
		t.Fatalf("republished too early: %v", u1)
	}
	// ...then crossing it swaps in the adapted top-k atomically.
	u2 := postJSON(t, base+"/v1/hist/traffic/updates",
		map[string]any{"updates": ups, "flush": true}, http.StatusOK)
	if u2["republished"] != true {
		t.Fatalf("flush did not republish: %v", u2)
	}
	versionAfterUpdates := uint64(u2["version"].(float64))
	if versionAfterUpdates <= versionAfterBuild {
		t.Fatalf("registry version did not advance: %d -> %d", versionAfterBuild, versionAfterUpdates)
	}
	// The 200 * delta=3 insertions all landed on keys < 50; the updated
	// histogram must now estimate more mass there.
	rg2 := getJSON(t, base+"/v1/hist/traffic/range?lo=0&hi=49", http.StatusOK)
	if rg2["estimate"].(float64) <= 0 {
		t.Fatalf("updated range estimate: %v", rg2["estimate"])
	}

	// Listing reflects the new version.
	list := getJSON(t, base+"/v1/hist", http.StatusOK)
	if uint64(list["registry_version"].(float64)) != versionAfterUpdates {
		t.Fatalf("list version: %v", list["registry_version"])
	}

	// Stats counted everything.
	st := getJSON(t, base+"/v1/stats", http.StatusOK)
	hs := st["histograms"].(map[string]any)["traffic"].(map[string]any)["stats"].(map[string]any)
	if c := hs["point"].(map[string]any)["count"].(float64); c < 1 {
		t.Fatalf("point stats: %v", hs)
	}
	if c := hs["update"].(map[string]any)["count"].(float64); c != 200 {
		t.Fatalf("update stats count = %v, want 200", c)
	}
	if c := hs["batch"].(map[string]any)["count"].(float64); c != 1 {
		t.Fatalf("batch stats count = %v, want 1", c)
	}
}

func TestServerErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	getJSON(t, base+"/v1/hist/nope/point?key=1", http.StatusNotFound)
	getJSON(t, base+"/v1/jobs/job-99", http.StatusNotFound)
	postJSON(t, base+"/v1/build", BuildRequest{Name: "x", Dataset: "missing", Method: "Send-V"},
		http.StatusNotFound)
	postJSON(t, base+"/v1/datasets", DatasetRequest{Name: "bad/name", Kind: "zipf", Records: 10, Domain: 16},
		http.StatusBadRequest)
	postJSON(t, base+"/v1/datasets", DatasetRequest{Name: "d", Kind: "nope"}, http.StatusBadRequest)

	// Unknown method and invalid histogram names are rejected up front.
	postJSON(t, base+"/v1/datasets", DatasetRequest{Name: "d", Kind: "zipf", Records: 100, Domain: 256},
		http.StatusCreated)
	postJSON(t, base+"/v1/build", BuildRequest{Name: "x", Dataset: "d", Method: "Magic"},
		http.StatusBadRequest)
	postJSON(t, base+"/v1/build", BuildRequest{Name: "a b", Dataset: "d", Method: "Send-V"},
		http.StatusBadRequest)

	// Oversized synthetic dataset request is refused, not attempted.
	postJSON(t, base+"/v1/datasets", DatasetRequest{Name: "big", Kind: "zipf", Records: 1 << 40, Domain: 256},
		http.StatusBadRequest)
}

// TestConcurrentQueriesDuringRepublish exercises the acceptance-criteria
// race scenario over HTTP: parallel /point and /range query traffic while
// a background rebuild loop republishes the same name. Run with -race.
func TestConcurrentQueriesDuringRepublish(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	base := ts.URL

	if _, err := s.Registry().Publish("hot", buildHist(t, 50000, 1<<12, 30, 1)); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var queries atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stop.Load() {
				url := base + "/v1/hist/hot/point?key=" + fmt.Sprint(id*37%4096)
				if id%2 == 1 {
					url = base + fmt.Sprintf("/v1/hist/hot/range?lo=%d&hi=%d", id*13%2048, id*13%2048+512)
				}
				resp, err := client.Get(url)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d", resp.StatusCode)
					return
				}
				queries.Add(1)
			}
		}(i)
	}

	// Rebuild/republish loop racing the query traffic.
	for seed := uint64(2); seed < 8; seed++ {
		if _, err := s.Registry().Publish("hot", buildHist(t, 20000, 1<<12, 30, seed)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if queries.Load() == 0 {
		t.Fatal("no queries completed during republishing")
	}
	if v := s.Registry().Version(); v != 7 {
		t.Fatalf("registry version = %d, want 7", v)
	}
}

// TestUpdatesConflictAfterRebuild verifies a maintainer seeded from an
// older histogram version can never republish over a newer build: the
// flush returns 409 and the next update batch reseeds from the fresh
// version.
func TestUpdatesConflictAfterRebuild(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	base := ts.URL
	if _, err := s.Registry().Publish("x", buildHist(t, 10000, 1<<10, 20, 1)); err != nil {
		t.Fatal(err)
	}
	// Seed the maintainer (no flush, no republish).
	postJSON(t, base+"/v1/hist/x/updates",
		map[string]any{"updates": []KeyUpdate{{Key: 1, Delta: 1}}}, http.StatusOK)
	// A rebuild publishes version 2 behind the maintainer's back.
	if _, err := s.Registry().Publish("x", buildHist(t, 10000, 1<<10, 20, 2)); err != nil {
		t.Fatal(err)
	}
	// The stale maintainer's flush must be refused, not clobber v2.
	postJSON(t, base+"/v1/hist/x/updates",
		map[string]any{"updates": []KeyUpdate{{Key: 2, Delta: 1}}, "flush": true}, http.StatusConflict)
	if v := s.Registry().Version(); v != 2 {
		t.Fatalf("stale maintainer advanced the registry: version %d", v)
	}
	// The next batch reseeds from v2 and republishes cleanly as v3.
	resp := postJSON(t, base+"/v1/hist/x/updates",
		map[string]any{"updates": []KeyUpdate{{Key: 2, Delta: 1}}, "flush": true}, http.StatusOK)
	if resp["republished"] != true || uint64(resp["version"].(float64)) != 3 {
		t.Fatalf("reseeded republish: %v", resp)
	}
}

// TestJobSetRetention verifies finished jobs are pruned oldest-first once
// the set exceeds its cap, while running jobs are never dropped.
func TestJobSetRetention(t *testing.T) {
	js := newJobSet(3)
	j1 := js.create("a", "d", "Send-V", ModeSimulated, nil)
	j2 := js.create("b", "d", "Send-V", ModeSimulated, nil)
	js.fail(j1, fmt.Errorf("x"))
	js.finish(j2, &Entry{Version: 1}, 5, nil)
	js.create("c", "d", "Send-V", ModeSimulated, nil) // still running
	js.create("e", "d", "Send-V", ModeSimulated, nil) // 4th job: prune kicks in, drops j1
	if _, ok := js.get(j1.ID); ok {
		t.Fatal("oldest finished job not pruned")
	}
	if _, ok := js.get(j2.ID); !ok {
		t.Fatal("pruned more than needed")
	}
	js.create("f", "d", "Send-V", ModeSimulated, nil) // drops j2, but running jobs survive
	if _, ok := js.get(j2.ID); ok {
		t.Fatal("second finished job not pruned")
	}
	for _, id := range []string{"job-3", "job-4", "job-5"} {
		if _, ok := js.get(id); !ok {
			t.Fatalf("running job %s was pruned", id)
		}
	}
}

// TestSnapshotPersistenceThroughServer verifies a server restart over the
// same snapshot dir keeps serving the published histogram.
func TestSnapshotPersistenceThroughServer(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewServer(Config{SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Registry().Publish("durable", buildHist(t, 10000, 1<<10, 20, 9)); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(Config{SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s2)
	defer ts.Close()
	p := getJSON(t, ts.URL+"/v1/hist/durable/point?key=3", http.StatusOK)
	if _, ok := p["estimate"].(float64); !ok {
		t.Fatalf("restarted server point query: %v", p)
	}
}
