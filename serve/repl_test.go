package serve

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"wavelethist/dist"
)

func pullBinary(t *testing.T, base string, since uint64) *dist.ReplPullResponse {
	t.Helper()
	frame := dist.EncodeReplPullRequest(&dist.ReplPullRequest{Since: since})
	resp, err := http.Post(base+"/v1/repl/pull", dist.ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pull: HTTP %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != dist.ContentTypeBinary {
		t.Fatalf("pull content type %q", ct)
	}
	out, err := dist.DecodeReplPullResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReplPull: the catch-up endpoint ships exactly the entries newer
// than the caller's cursor, in version order, plus the full live name
// set for drop detection — over both wire encodings.
func TestReplPull(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if _, err := s.Registry().Publish("a", buildHist(t, 10000, 1<<10, 20, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Publish("b", buildHist(t, 10000, 1<<10, 20, 2)); err != nil {
		t.Fatal(err)
	}

	full := pullBinary(t, ts.URL, 0)
	if full.Version != s.Registry().Version() || len(full.Entries) != 2 || len(full.Names) != 2 {
		t.Fatalf("full pull: %+v", full)
	}
	if full.Entries[0].Version >= full.Entries[1].Version {
		t.Fatalf("entries out of version order: %d, %d", full.Entries[0].Version, full.Entries[1].Version)
	}

	// Incremental: from the current version there is nothing to ship.
	if inc := pullBinary(t, ts.URL, full.Version); len(inc.Entries) != 0 {
		t.Fatalf("incremental pull shipped %d entries", len(inc.Entries))
	}

	// One republish → exactly one entry newer than the old cursor.
	if _, err := s.Registry().Publish("a", buildHist(t, 10000, 1<<10, 20, 3)); err != nil {
		t.Fatal(err)
	}
	inc := pullBinary(t, ts.URL, full.Version)
	if len(inc.Entries) != 1 || inc.Entries[0].Name != "a" {
		t.Fatalf("incremental pull: %+v", inc.Entries)
	}

	// Drop detection: the name set shrinks even though no entry ships.
	s.Registry().Drop("b")
	after := pullBinary(t, ts.URL, inc.Version)
	if len(after.Entries) != 0 || len(after.Names) != 1 || after.Names[0] != "a" {
		t.Fatalf("post-drop pull: entries=%v names=%v", after.Entries, after.Names)
	}

	// JSON negotiation: same payload, JSON encoding.
	var jr dist.ReplPullResponse
	out := postJSON(t, ts.URL+"/v1/repl/pull", dist.ReplPullRequest{Since: 0}, http.StatusOK)
	if uint64(out["version"].(float64)) != after.Version {
		t.Fatalf("JSON pull version %v, want %d", out["version"], after.Version)
	}
	_ = jr
}

// TestReadOnlyReplicaMode: a ReadOnly server rejects every mutation with
// 403, keeps serving reads, and accepts writes after promotion.
func TestReadOnlyReplicaMode(t *testing.T) {
	s, ts := newTestServer(t, Config{ReadOnly: true})
	if _, err := s.Registry().Publish("r", buildHist(t, 10000, 1<<10, 20, 4)); err != nil {
		t.Fatal(err)
	}

	// Reads work.
	getJSON(t, ts.URL+"/v1/hist/r/point?key=5", http.StatusOK)
	getJSON(t, ts.URL+"/v1/hist/r/range?lo=0&hi=100", http.StatusOK)

	// Mutations are refused.
	postJSON(t, ts.URL+"/v1/hist/r/updates", map[string]any{
		"updates": []map[string]any{{"key": 1, "delta": 1}},
	}, http.StatusForbidden)
	postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name": "z", "kind": "zipf", "records": 1000, "domain": 1024,
	}, http.StatusForbidden)
	postJSON(t, ts.URL+"/v1/build", map[string]any{
		"name": "x", "dataset": "z", "method": "Send-V",
	}, http.StatusForbidden)

	// Stats expose the read-only posture.
	stats := getJSON(t, ts.URL+"/v1/stats", http.StatusOK)
	repl, ok := stats["replication"].(map[string]any)
	if !ok || repl["read_only"] != true {
		t.Fatalf("stats replication section: %v", stats["replication"])
	}

	// Promote: exactly once, then mutations flow.
	out := postJSON(t, ts.URL+"/v1/promote", nil, http.StatusOK)
	if out["promoted"] != true {
		t.Fatalf("promote: %v", out)
	}
	postJSON(t, ts.URL+"/v1/promote", nil, http.StatusConflict)
	postJSON(t, ts.URL+"/v1/hist/r/updates", map[string]any{
		"updates": []map[string]any{{"key": 1, "delta": 1}},
	}, http.StatusOK)
}

// TestMaintainerPersistence: maintainer state (the full tracked set, not
// just the published top-k) survives a server restart through the .wmnt
// snapshot written at each republish.
func TestMaintainerPersistence(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{SnapshotDir: dir, RepublishEvery: 4})
	if _, err := s1.Registry().Publish("m", buildHist(t, 20000, 1<<12, 30, 5)); err != nil {
		t.Fatal(err)
	}
	// Apply updates; the flush forces a republish, which persists .wmnt.
	postJSON(t, ts1.URL+"/v1/hist/m/updates", map[string]any{
		"updates": []map[string]any{
			{"key": 42, "delta": 500}, {"key": 99, "delta": -3}, {"key": 7, "delta": 12},
		},
		"flush": true,
	}, http.StatusOK)

	s1.mu.Lock()
	m1 := s1.maints["m"]
	s1.mu.Unlock()
	if m1 == nil {
		t.Fatal("no live maintainer after updates")
	}
	want, err := m1.mh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory: the maintainer is re-seeded from
	// disk with byte-identical state (deterministic WMNT encoding).
	s2, ts2 := newTestServer(t, Config{SnapshotDir: dir, RepublishEvery: 4})
	s2.mu.Lock()
	m2 := s2.maints["m"]
	s2.mu.Unlock()
	if m2 == nil {
		t.Fatal("maintainer not restored from snapshot dir")
	}
	got, err := m2.mh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restored maintainer state differs from saved state")
	}
	if m2.base != func() uint64 { e, _ := s2.Registry().Lookup("m"); return e.Version }() {
		t.Fatal("restored maintainer base does not match registry entry version")
	}

	// The restored lineage keeps accepting updates and republishing.
	postJSON(t, ts2.URL+"/v1/hist/m/updates", map[string]any{
		"updates": []map[string]any{{"key": 42, "delta": 1}},
		"flush":   true,
	}, http.StatusOK)
}
