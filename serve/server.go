package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wavelethist"
	"wavelethist/dist"
	"wavelethist/internal/obs"
)

// Config tunes a Server. The zero value is usable: in-memory registry,
// default batch and body limits.
type Config struct {
	// SnapshotDir persists published histograms (loaded at startup,
	// written on publish). Empty = in-memory only.
	SnapshotDir string
	// RepublishEvery is how many applied updates trigger an automatic
	// atomic republish of a maintained histogram's adapted top-k
	// (default 256). Clients can force one with "flush": true.
	RepublishEvery int
	// MaxBatch bounds queries per batch request and updates per update
	// request (default 4096).
	MaxBatch int
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxDatasetRecords bounds synthetic dataset creation via the API
	// (default 1<<22), keeping a hostile request from exhausting memory.
	MaxDatasetRecords int64
	// MaxDomain bounds dataset domain size via the API (default 1<<24).
	MaxDomain int64
	// MaxConcurrentBuilds bounds simultaneous build jobs (default 4);
	// further POST /v1/build requests get 429 until a slot frees.
	MaxConcurrentBuilds int
	// MaxJobs bounds retained job records (default 1024); the oldest
	// finished jobs are pruned as new ones are created.
	MaxJobs int
	// Coordinator enables distributed builds: POST /v1/build with
	// "distributed": true fans the build out to the coordinator's worker
	// fleet, and the coordinator's /dist/v1/* endpoints (worker
	// registration, heartbeats, fleet listing) are mounted on the server.
	// Nil keeps every build on the in-process simulated cluster.
	Coordinator *dist.Coordinator
	// MaxPendingPerWorker sheds distributed POST /v1/build requests with
	// 429 + Retry-After while the fleet's pending splits per alive worker
	// are at or above this threshold — backpressure so a saturated fleet
	// queues at the clients, not in the coordinator. 0 = default (64);
	// negative disables shedding.
	MaxPendingPerWorker int
	// ReadOnly starts the server as a read replica: every mutating
	// endpoint (builds, updates, dataset creation) answers 403 until
	// POST /v1/promote flips it writable. The ha.Replica sync loop keeps
	// a read-only server's registry following a primary.
	ReadOnly bool
	// Epoch pins the server's starting registry epoch (tests and
	// embedders). 0 = automatic: the persisted SnapshotDir counter + 1,
	// or a random draw for in-memory servers. See epoch.go.
	Epoch uint64
	// Shard is an informational label ("" = unsharded) reported in
	// /v1/stats and /healthz so operators and the router can tell which
	// shard a process serves.
	Shard string
	// SlowQueryThreshold logs a structured one-line record (op, name,
	// micros, batch size) for every query slower than this, and counts it
	// in wavehist_slow_queries_total. 0 (the default) disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query lines (nil = log.Default()).
	SlowQueryLog *log.Logger
	// SlowQueryDir additionally appends each slow query as one JSON line
	// to slow-queries.jsonl under this directory (created on first use) —
	// the same pattern as the build tracer's trace dir. Empty disables
	// the structured sink; the log line and counter are unaffected.
	SlowQueryDir string
	// VecBatchMin overrides the batch size at which POST /v1/hist/{name}/
	// query switches from the scalar per-query loop to the vectorized
	// shared-walk executors. 0 = default (16); negative disables
	// vectorization entirely (scalar-only, for baselining). Results are
	// bit-identical either way — this knob only trades setup cost against
	// shared-walk savings.
	VecBatchMin int
	// BatchWorkers bounds the parallel batch executors' worker pool once
	// a gathered query class reaches the parallel threshold. 0 = automatic
	// (GOMAXPROCS-capped); 1 pins batches to the serial vectorized sweep.
	BatchWorkers int
}

func (c Config) withDefaults() Config {
	if c.RepublishEvery <= 0 {
		c.RepublishEvery = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxDatasetRecords <= 0 {
		c.MaxDatasetRecords = 1 << 22
	}
	if c.MaxDomain <= 0 {
		c.MaxDomain = 1 << 24
	}
	if c.MaxConcurrentBuilds <= 0 {
		c.MaxConcurrentBuilds = 4
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxPendingPerWorker == 0 {
		c.MaxPendingPerWorker = 64
	}
	if c.VecBatchMin == 0 {
		c.VecBatchMin = vecBatchMin
	}
	return c
}

// tuning resolves the batch-execution knobs into the form Entry.batch
// consumes (vecMin < 0 = scalar-only).
func (c Config) tuning() batchTuning {
	tn := batchTuning{vecMin: c.VecBatchMin, workers: c.BatchWorkers}
	if tn.vecMin < 0 {
		tn.vecMin = -1
	}
	return tn
}

// maintained pairs a published name with its live maintainer. The
// maintainer itself is single-writer; mu serializes update batches while
// query traffic keeps hitting the registry's last-published snapshot.
type maintained struct {
	mu      sync.Mutex
	mh      *wavelethist.MaintainedHistogram
	pending int // updates applied since the last republish
	// base is the entry version this maintainer's state derives from
	// (seed or last republish). A republish is allowed only while the
	// registry still holds that version — otherwise a concurrent
	// rebuild has superseded this lineage.
	base uint64
}

// Server is the wavehistd HTTP handler: a registry plus dataset store,
// build-job runner, and the /v1 JSON API.
type Server struct {
	cfg      Config
	reg      *Registry
	jobs     *jobSet
	buildSem chan struct{} // bounds concurrent build goroutines
	mux      *http.ServeMux

	// baseCtx parents every build job's context; Close cancels it so
	// daemon shutdown doesn't strand job goroutines.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	jobWG      sync.WaitGroup

	// readOnly is the replica-mode latch (see Config.ReadOnly, Promote);
	// repl holds the latest sync status a replica follower installed.
	// epoch is the registry epoch (epoch.go); promoteMu serializes
	// promotion/demotion against replication applies (ReplApply) so a
	// role flip never interleaves with a half-applied pull.
	readOnly  atomic.Bool
	repl      atomic.Pointer[ReplStatus]
	epoch     atomic.Uint64
	promoteMu sync.RWMutex

	// Observability plane (metrics.go): the /metrics registry plus the
	// static instruments the job runner and slow-query log record into.
	metrics        *obs.Registry
	buildsDone     *obs.Counter
	buildsFailed   *obs.Counter
	buildsCanceled *obs.Counter
	buildDur       *obs.Histogram
	slowQueries    *obs.Counter
	slowLog        *slowLogSink // nil unless Config.SlowQueryDir is set

	mu       sync.Mutex
	datasets map[string]*wavelethist.Dataset
	maints   map[string]*maintained
}

// NewServer builds a Server, loading SnapshotDir if configured.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var (
		reg *Registry
		err error
	)
	if cfg.SnapshotDir != "" {
		reg, err = OpenRegistry(cfg.SnapshotDir)
		if err != nil {
			return nil, err
		}
	} else {
		reg = NewRegistry()
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		jobs:       newJobSet(cfg.MaxJobs),
		buildSem:   make(chan struct{}, cfg.MaxConcurrentBuilds),
		mux:        http.NewServeMux(),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		datasets:   map[string]*wavelethist.Dataset{},
		maints:     map[string]*maintained{},
	}
	s.readOnly.Store(cfg.ReadOnly)
	if err := s.initEpoch(); err != nil {
		return nil, err
	}
	if cfg.SlowQueryDir != "" {
		s.slowLog = newSlowLogSink(cfg.SlowQueryDir)
	}
	s.initMetrics()
	s.loadMaints()
	s.routes()
	return s, nil
}

// Registry exposes the underlying registry for embedding and tests.
func (s *Server) Registry() *Registry { return s.reg }

// Coordinator returns the configured distributed-build coordinator (nil
// when running simulated-only).
func (s *Server) Coordinator() *dist.Coordinator { return s.cfg.Coordinator }

// Close cancels all running build jobs and waits for their goroutines to
// drain — call it on daemon shutdown so no job outlives the server.
func (s *Server) Close() {
	s.baseCancel()
	s.jobWG.Wait()
	if s.slowLog != nil {
		s.slowLog.close()
	}
}

// RegisterDataset makes a dataset buildable by name via POST /v1/build.
func (s *Server) RegisterDataset(name string, ds *wavelethist.Dataset) error {
	if err := ValidName(name); err != nil {
		return err
	}
	if ds == nil {
		return fmt.Errorf("serve: nil dataset")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.datasets[name] = ds
	return nil
}

func (s *Server) dataset(name string) (*wavelethist.Dataset, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.datasets[name]
	return ds, ok
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/hist", s.handleList)
	s.mux.HandleFunc("GET /v1/hist/{name}/point", s.handlePoint)
	s.mux.HandleFunc("GET /v1/hist/{name}/range", s.handleRange)
	s.mux.HandleFunc("POST /v1/hist/{name}/query", s.handleBatch)
	s.mux.HandleFunc("POST /v1/hist/{name}/updates", s.handleUpdates)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.Handle("GET /metrics", s.metrics.Handler())
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /v1/datasets", s.handleCreateDataset)
	s.mux.HandleFunc("POST /v1/build", s.handleBuild)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("POST /v1/repl/pull", s.handleReplPull)
	s.mux.HandleFunc("POST /v1/promote", s.handlePromote)
	s.mux.HandleFunc("POST /v1/demote", s.handleDemote)
	if s.cfg.Coordinator != nil {
		s.mux.Handle("/dist/v1/", s.cfg.Coordinator.Handler())
	}
}

// --- JSON plumbing ---

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func queryInt64(r *http.Request, key string) (int64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return 0, fmt.Errorf("missing query parameter %q", key)
	}
	return strconv.ParseInt(v, 10, 64)
}

func (s *Server) entry(w http.ResponseWriter, r *http.Request) (*Entry, bool) {
	name := r.PathValue("name")
	e, ok := s.reg.Lookup(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "no histogram %q", name)
		return nil, false
	}
	return e, true
}

// --- handlers ---

// handleHealth reports liveness plus the fields the router's health
// checker elects and fences on: the registry epoch, role, and — for
// replicas — the primary version applied and the epoch it was synced
// under. One probe answers "alive?", "who are you?" and "how caught up?".
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"ok":        true,
		"version":   s.reg.Version(),
		"epoch":     s.epoch.Load(),
		"read_only": s.readOnly.Load(),
	}
	if s.cfg.Shard != "" {
		out["shard"] = s.cfg.Shard
	}
	if st := s.repl.Load(); st != nil {
		out["applied"] = st.Version
		out["repl_epoch"] = st.Epoch
	}
	writeJSON(w, http.StatusOK, out)
}

// HistInfo describes one published histogram in GET /v1/hist.
type HistInfo struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	Kind    string `json:"kind"` // "1d" | "2d"
	K       int    `json:"k"`
	Domain  int64  `json:"domain"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	names := snap.Names()
	infos := make([]HistInfo, 0, len(names))
	for _, n := range names {
		e, _ := snap.Lookup(n)
		kind := "1d"
		if e.Is2D() {
			kind = "2d"
		}
		infos = append(infos, HistInfo{
			Name: n, Version: e.Version, Kind: kind, K: e.K(), Domain: e.Domain(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"registry_version": snap.Version(),
		"histograms":       infos,
	})
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	defer func() { s.slowQuery("point", e.Name, 1, 0, time.Since(t0)) }()
	if e.Is2D() {
		x, errX := queryInt64(r, "x")
		y, errY := queryInt64(r, "y")
		if errX != nil || errY != nil {
			writeErr(w, http.StatusBadRequest, "2D point query needs integer x and y")
			return
		}
		est, err := e.Point2D(x, y)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeEstimate(w, e.Name, e.Version, est,
			EstimateField{"x", x}, EstimateField{"y", y})
		return
	}
	key, err := queryInt64(r, "key")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	est, err := e.Point(key)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeEstimate(w, e.Name, e.Version, est, EstimateField{"key", key})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	defer func() { s.slowQuery("range", e.Name, 1, 0, time.Since(t0)) }()
	if e.Is2D() {
		xlo, errXLo := queryInt64(r, "xlo")
		xhi, errXHi := queryInt64(r, "xhi")
		ylo, errYLo := queryInt64(r, "ylo")
		yhi, errYHi := queryInt64(r, "yhi")
		if errXLo != nil || errXHi != nil || errYLo != nil || errYHi != nil {
			writeErr(w, http.StatusBadRequest, "2D range query needs integer xlo, xhi, ylo and yhi")
			return
		}
		est, err := e.Range2D(xlo, xhi, ylo, yhi)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeEstimate(w, e.Name, e.Version, est,
			EstimateField{"xlo", xlo}, EstimateField{"xhi", xhi},
			EstimateField{"ylo", ylo}, EstimateField{"yhi", yhi})
		return
	}
	lo, errLo := queryInt64(r, "lo")
	hi, errHi := queryInt64(r, "hi")
	if errLo != nil || errHi != nil {
		writeErr(w, http.StatusBadRequest, "range query needs integer lo and hi")
		return
	}
	est, err := e.Range(lo, hi)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeEstimate(w, e.Name, e.Version, est,
		EstimateField{"lo", lo}, EstimateField{"hi", hi})
}

// batchBuffers is one batch request's reusable state: the decoded query
// slice, the result slice, and the JSON response envelope. Pooled so the
// steady-state batch path — the server's hottest endpoint — re-serves
// requests out of recycled buffers instead of per-request garbage
// (encoding/json reuses the backing arrays of non-nil slices it decodes
// into).
type batchBuffers struct {
	Req struct {
		Queries []BatchQuery `json:"queries"`
	}
	Resp batchResponse
}

// batchResponse is the JSON envelope of POST /v1/hist/{name}/query.
type batchResponse struct {
	Name    string        `json:"name"`
	Version uint64        `json:"version"`
	Results []BatchResult `json:"results"`
}

var batchPool = sync.Pool{New: func() any { return new(batchBuffers) }}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	bb := batchPool.Get().(*batchBuffers)
	defer batchPool.Put(bb)
	// Zero the recycled backing array before decoding into it:
	// encoding/json reuses slice elements without clearing them, so a
	// field omitted from this request (omitempty zero values) would
	// otherwise inherit whatever a previous request left in that slot.
	clear(bb.Req.Queries[:cap(bb.Req.Queries)])
	bb.Req.Queries = bb.Req.Queries[:0]
	if !s.decode(w, r, &bb.Req) {
		return
	}
	n := len(bb.Req.Queries)
	if n == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	if n > s.cfg.MaxBatch {
		writeErr(w, http.StatusBadRequest, "batch of %d exceeds limit %d", n, s.cfg.MaxBatch)
		return
	}
	if cap(bb.Resp.Results) < n {
		bb.Resp.Results = make([]BatchResult, n)
	}
	bb.Resp.Results = bb.Resp.Results[:n]
	// One snapshot resolution, one timestamp pair, and zero per-query
	// allocations for the whole batch — the amortization the endpoint
	// exists for. Every sub-query resolves off the entry's shared
	// error-tree index.
	e.batch(bb.Req.Queries, bb.Resp.Results, s.cfg.tuning())
	bb.Resp.Name = e.Name
	bb.Resp.Version = e.Version
	writeJSON(w, http.StatusOK, &bb.Resp)
	// The router's coalescer stamps merged batches with how many
	// original client queries it folded in, so slow-query records can
	// tell organic large batches from coalesced ones.
	coalesced, _ := strconv.Atoi(r.Header.Get("X-Wavehist-Coalesced"))
	s.slowQuery("batch", e.Name, n, coalesced, time.Since(t0))
}

// KeyUpdate is one insertion/deletion in POST /v1/hist/{name}/updates.
type KeyUpdate struct {
	Key   int64   `json:"key"`
	Delta float64 `json:"delta"` // negative = deletions
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if !s.writable(w) {
		return
	}
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	if e.Is2D() {
		writeErr(w, http.StatusBadRequest, "updates are 1D-only")
		return
	}
	var req struct {
		Updates []KeyUpdate `json:"updates"`
		Flush   bool        `json:"flush,omitempty"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Updates) > s.cfg.MaxBatch {
		writeErr(w, http.StatusBadRequest, "update batch of %d exceeds limit %d", len(req.Updates), s.cfg.MaxBatch)
		return
	}
	m, err := s.maintainer(e)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}

	t0 := time.Now()
	m.mu.Lock()
	// Validate against the maintainer's own domain, not the (possibly
	// newer) registry entry's: a concurrent rebuild may have published a
	// different-domain histogram, and keys valid there would panic the
	// old maintainer.
	dom := m.mh.Domain()
	for _, u := range req.Updates {
		if u.Key < 0 || u.Key >= dom {
			m.mu.Unlock()
			writeErr(w, http.StatusBadRequest, "update key %d outside domain [0, %d)", u.Key, dom)
			return
		}
	}
	for _, u := range req.Updates {
		m.mh.Update(u.Key, u.Delta)
	}
	m.pending += len(req.Updates)
	republish := req.Flush || m.pending >= s.cfg.RepublishEvery
	var (
		version uint64
		tracked = m.mh.Tracked()
	)
	if republish {
		// Publish the adapted top-k atomically; in-flight queries keep
		// the old snapshot, new ones see the fresh coefficients. Under
		// s.mu, verify this maintainer is still the registered one AND
		// its base version still matches the registry — a concurrent
		// rebuild invalidates both, and a stale maintainer must never
		// overwrite a freshly built histogram.
		s.mu.Lock()
		cur, ok := s.reg.Lookup(e.Name)
		if s.maints[e.Name] != m || !ok || cur.Version != m.base {
			if s.maints[e.Name] == m {
				delete(s.maints, e.Name) // obsolete lineage; reseed next time
			}
			s.mu.Unlock()
			m.mu.Unlock()
			writeErr(w, http.StatusConflict, "histogram %q was rebuilt concurrently; re-send updates", e.Name)
			return
		}
		ne, perr := s.reg.Publish(e.Name, m.mh.Histogram())
		s.mu.Unlock()
		if perr != nil {
			m.mu.Unlock()
			writeErr(w, http.StatusInternalServerError, "republish: %v", perr)
			return
		}
		version = ne.Version
		m.base = ne.Version
		m.pending = 0
		// The published histogram and the saved maintainer state now
		// describe the same lineage point; persist them together so a
		// restart resumes exactly here.
		s.persistMaint(e.Name, m.mh)
	} else {
		version = s.reg.Version()
	}
	m.mu.Unlock()
	e.Stats.Update.Add(int64(len(req.Updates)), time.Since(t0))
	s.slowQuery("updates", e.Name, len(req.Updates), 0, time.Since(t0))

	writeJSON(w, http.StatusOK, map[string]any{
		"name":        e.Name,
		"applied":     len(req.Updates),
		"republished": republish,
		"version":     version,
		"tracked":     tracked,
	})
}

// maintainer returns (creating on first use) the live maintainer for a
// published 1D histogram, seeded from its current coefficients. The
// registry entry is re-resolved under s.mu: the caller's entry may be
// stale if a rebuild published (and invalidated the old maintainer)
// between the caller's lookup and this call — seeding from it would
// let a later republish silently overwrite the fresh build.
func (s *Server) maintainer(e *Entry) (*maintained, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.maints[e.Name]; ok {
		return m, nil
	}
	cur, ok := s.reg.Lookup(e.Name)
	if !ok || cur.Is2D() {
		return nil, fmt.Errorf("serve: %q no longer maintainable", e.Name)
	}
	mh, err := wavelethist.MaintainHistogram(cur.H, cur.K(), 0)
	if err != nil {
		return nil, err
	}
	m := &maintained{mh: mh, base: cur.Version}
	s.maints[e.Name] = m
	s.persistMaint(e.Name, mh)
	return m, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	per := make(map[string]any, len(snap.entries))
	for _, n := range snap.Names() {
		e, _ := snap.Lookup(n)
		per[n] = map[string]any{
			"version": e.Version,
			"k":       e.K(),
			"domain":  e.Domain(),
			"stats":   e.Stats.View(),
		}
	}
	out := map[string]any{
		"registry_version": snap.Version(),
		"epoch":            s.epoch.Load(),
		"histograms":       per,
	}
	if s.cfg.Shard != "" {
		out["shard"] = s.cfg.Shard
	}
	// Fleet saturation (queue depth, per-worker in-flight and last-RPC
	// latency) when distributed builds are enabled — the coordinator-side
	// signal for autoscaling and backpressure.
	if s.cfg.Coordinator != nil {
		out["fleet"] = s.cfg.Coordinator.FleetStats()
	}
	// Replication posture: present whenever the server is (or was) a
	// replica, so operators see read-only state and sync lag in one place.
	if st := s.repl.Load(); st != nil || s.readOnly.Load() {
		repl := map[string]any{"read_only": s.readOnly.Load()}
		if st != nil {
			repl["primary"] = st.Primary
			repl["version"] = st.Version
			repl["synced_at"] = st.SyncedAt
			repl["lag_versions"] = st.LagVersions
			repl["epoch"] = st.Epoch
			if st.EpochResets > 0 {
				repl["epoch_resets"] = st.EpochResets
			}
			if !st.LastAttempt.IsZero() {
				repl["last_attempt"] = st.LastAttempt
			}
			if st.Error != "" {
				repl["error"] = st.Error
			}
		}
		out["replication"] = repl
	}
	writeJSON(w, http.StatusOK, out)
}

// DatasetRequest creates a dataset via POST /v1/datasets.
type DatasetRequest struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "zipf" | "worldcup" | "keys"

	// zipf
	Records int64   `json:"records,omitempty"`
	Domain  int64   `json:"domain,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`

	// worldcup
	ClientBits uint `json:"client_bits,omitempty"`
	ObjectBits uint `json:"object_bits,omitempty"`

	// keys
	Keys []int64 `json:"keys,omitempty"`
}

func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	if !s.writable(w) {
		return
	}
	var req DatasetRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := ValidName(req.Name); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Records > s.cfg.MaxDatasetRecords || int64(len(req.Keys)) > s.cfg.MaxDatasetRecords {
		writeErr(w, http.StatusBadRequest, "dataset exceeds record limit %d", s.cfg.MaxDatasetRecords)
		return
	}
	if req.Domain > s.cfg.MaxDomain {
		writeErr(w, http.StatusBadRequest, "domain exceeds limit %d", s.cfg.MaxDomain)
		return
	}
	var (
		ds  *wavelethist.Dataset
		err error
	)
	switch req.Kind {
	case "zipf":
		ds, err = wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
			Records: req.Records, Domain: req.Domain, Alpha: req.Alpha, Seed: req.Seed,
		})
	case "worldcup":
		ds, err = wavelethist.NewWorldCupDataset(wavelethist.WorldCupOptions{
			Records: req.Records, ClientBits: req.ClientBits,
			ObjectBits: req.ObjectBits, Seed: req.Seed,
		})
	case "keys":
		ds, err = wavelethist.NewDatasetFromKeys(req.Keys, wavelethist.KeysOptions{Domain: req.Domain})
	default:
		writeErr(w, http.StatusBadRequest, "unknown dataset kind %q (want zipf, worldcup or keys)", req.Kind)
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.RegisterDataset(req.Name, ds); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":    req.Name,
		"records": ds.NumRecords(),
		"domain":  ds.Domain(),
		"splits":  ds.NumSplits(0),
	})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make(map[string]any, len(s.datasets))
	for n, ds := range s.datasets {
		out[n] = map[string]any{
			"records": ds.NumRecords(), "domain": ds.Domain(), "splits": ds.NumSplits(0),
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// BuildRequest launches an async build via POST /v1/build.
type BuildRequest struct {
	Name    string  `json:"name"`    // histogram name to publish as
	Dataset string  `json:"dataset"` // registered dataset
	Method  string  `json:"method"`  // one of the paper's seven methods
	K       int     `json:"k,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
	// Distributed runs the build on the waveworker fleet instead of the
	// simulated cluster (requires a configured coordinator).
	Distributed bool `json:"distributed,omitempty"`
	// Maintain seeds a live maintainer from the built histogram so the
	// updates endpoint keeps it fresh; Shadow sizes its shadow set.
	Maintain bool `json:"maintain,omitempty"`
	Shadow   int  `json:"shadow,omitempty"`
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	if !s.writable(w) {
		return
	}
	var req BuildRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := ValidName(req.Name); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ds, ok := s.dataset(req.Dataset)
	if !ok {
		writeErr(w, http.StatusNotFound, "no dataset %q", req.Dataset)
		return
	}
	valid := false
	for _, m := range wavelethist.Methods() {
		if string(m) == req.Method {
			valid = true
			break
		}
	}
	if !valid {
		writeErr(w, http.StatusBadRequest, "unknown method %q", req.Method)
		return
	}
	mode := ModeSimulated
	if req.Distributed {
		if s.cfg.Coordinator == nil {
			writeErr(w, http.StatusBadRequest, "distributed builds are not enabled (start wavehistd with -workers or -dist)")
			return
		}
		if retryAfter, shed := s.fleetSaturated(); shed {
			w.Header().Set("Retry-After", retryAfter)
			writeErr(w, http.StatusTooManyRequests,
				"fleet saturated (pending splits per alive worker >= %d); retry later", s.cfg.MaxPendingPerWorker)
			return
		}
		mode = ModeDistributed
	}
	select {
	case s.buildSem <- struct{}{}:
	default:
		writeErr(w, http.StatusTooManyRequests, "at build-concurrency limit %d; retry later", s.cfg.MaxConcurrentBuilds)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	job := s.jobs.create(req.Name, req.Dataset, req.Method, mode, cancel)
	s.jobWG.Add(1)
	go s.runBuild(ctx, cancel, job, ds, req)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"job":        job.ID,
		"status_url": "/v1/jobs/" + job.ID,
	})
}

// fleetSaturated applies the distributed-build admission check: shed when
// the queue depth per alive worker crosses the configured threshold. The
// Retry-After hint scales with how deep the backlog already is, capped so
// clients re-probe within a minute.
func (s *Server) fleetSaturated() (retryAfter string, shed bool) {
	if s.cfg.MaxPendingPerWorker < 0 || s.cfg.Coordinator == nil {
		return "", false
	}
	fs := s.cfg.Coordinator.FleetStats()
	if fs.AliveWorkers == 0 {
		// No workers at all is reported by the build itself (or the
		// fleet is mid-registration); shedding here would mask the
		// clearer error.
		return "", false
	}
	perWorker := fs.PendingSplits / fs.AliveWorkers
	if perWorker < s.cfg.MaxPendingPerWorker {
		return "", false
	}
	wait := perWorker / s.cfg.MaxPendingPerWorker
	if wait < 1 {
		wait = 1
	}
	if wait > 60 {
		wait = 60
	}
	return strconv.Itoa(wait), true
}

func (s *Server) runBuild(ctx context.Context, cancel context.CancelFunc, job *Job, ds *wavelethist.Dataset, req BuildRequest) {
	defer s.jobWG.Done()
	defer cancel()
	defer func() { <-s.buildSem }()
	t0 := time.Now()
	defer func() { s.buildDur.Observe(time.Since(t0)) }()
	opts := wavelethist.Options{K: req.K, Epsilon: req.Epsilon, Seed: req.Seed}
	var (
		res *wavelethist.Result
		err error
	)
	if req.Distributed {
		// The sink learns the coordinator-assigned build ID as soon as it
		// exists, so GET /v1/jobs/{id}/trace works while the build runs.
		bctx := dist.WithJobIDSink(ctx, func(distID string) { s.jobs.setDistJobID(job, distID) })
		res, err = wavelethist.BuildDistributed(bctx, ds, wavelethist.Method(req.Method), opts, s.cfg.Coordinator)
	} else {
		res, err = wavelethist.BuildContext(ctx, ds, wavelethist.Method(req.Method), opts)
	}
	if err != nil {
		if s.jobs.fail(job, err) == JobCanceled {
			s.buildsCanceled.Inc()
		} else {
			s.buildsFailed.Inc()
		}
		return
	}
	// A fresh build supersedes any maintainer state accumulated against
	// the previous version of this name. Deregister BEFORE publishing:
	// handleUpdates republishes only while its maintainer is still
	// registered (checked under s.mu), so this ordering ensures any
	// racing stale republish lands before — never after — the build's
	// publish below.
	s.mu.Lock()
	delete(s.maints, req.Name)
	s.mu.Unlock()
	s.removeMaintFile(req.Name)
	e, err := s.reg.Publish(req.Name, res.Histogram)
	if err != nil {
		s.jobs.fail(job, err)
		s.buildsFailed.Inc()
		return
	}
	if req.Maintain {
		mh, merr := wavelethist.MaintainHistogram(res.Histogram, res.Histogram.K(), req.Shadow)
		if merr != nil {
			s.jobs.fail(job, fmt.Errorf("histogram published at version %d, but maintainer setup failed: %w", e.Version, merr))
			s.buildsFailed.Inc()
			return
		}
		s.mu.Lock()
		s.maints[req.Name] = &maintained{mh: mh, base: e.Version}
		s.mu.Unlock()
		s.persistMaint(req.Name, mh)
	}
	s.jobs.finish(job, e, res.Histogram.K(), res)
	s.buildsDone.Inc()
}

// handleJobTrace serves the distributed build's span trace for a serve
// job: the coordinator records one span per split-batch RPC (worker,
// timing, wire bytes, cached/replayed splits, retry/restored flags),
// live while the build runs and retained after it finishes. Simulated
// builds have no fan-out and therefore no trace.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	view := s.jobs.view(j)
	if view.Mode != ModeDistributed {
		writeErr(w, http.StatusNotFound, "job %q is %s; traces are recorded for distributed builds only", id, view.Mode)
		return
	}
	if s.cfg.Coordinator == nil {
		writeErr(w, http.StatusNotFound, "no coordinator configured")
		return
	}
	distID := s.jobs.distJobID(j)
	if distID == "" {
		writeErr(w, http.StatusNotFound, "job %q has not fanned out yet; retry shortly", id)
		return
	}
	tv, ok := s.cfg.Coordinator.Trace(distID)
	if !ok {
		writeErr(w, http.StatusNotFound, "trace for job %q (build %s) has been evicted", id, distID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": j.ID, "trace": tv})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.view(j))
}

// handleCancelJob cancels a running build: its context is canceled and
// the build goroutine moves it to "canceled" once it unwinds. Canceling
// an already-finished job is a no-op that reports the final state.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	canceling := s.jobs.requestCancel(j)
	writeJSON(w, http.StatusOK, map[string]any{
		"job":       j.ID,
		"canceling": canceling,
		"state":     s.jobs.view(j).State,
	})
}
