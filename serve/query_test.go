package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestEntryBatchAllocationFree pins the batch serving path's steady-state
// guarantee: with reused query/result slices — what the pooled HTTP
// handler and any embedding caller do — answering a batch performs zero
// allocations per sub-query.
func TestEntryBatchAllocationFree(t *testing.T) {
	r := NewRegistry()
	h := buildHist(t, 200000, 1<<14, 256, 3)
	e, err := r.Publish("zipf", h)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]BatchQuery, 256)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = BatchQuery{Op: "point", Key: int64(i * 13 % (1 << 14))}
		} else {
			queries[i] = BatchQuery{Op: "range", Lo: int64(i), Hi: int64(i + 500)}
		}
	}
	results := make([]BatchResult, len(queries))
	if raceEnabled {
		e.Batch(queries, results) // exercise the path; the alloc property needs uninstrumented pools
	} else if a := testing.AllocsPerRun(100, func() { e.Batch(queries, results) }); a != 0 {
		t.Errorf("Batch of %d queries allocates %.1f objects per call; want 0", len(queries), a)
	}
	if n := e.Stats.BatchQueries.View().Count; n == 0 {
		t.Error("batch sub-query stat not recorded")
	}
}

// TestRangeClampContract covers the unified bound semantics at every
// layer: library RangeCount, Entry.Range, and the HTTP range + batch
// endpoints all clamp bounds to the domain and estimate 0 for an empty
// intersection — no layer rejects lo > hi anymore.
func TestRangeClampContract(t *testing.T) {
	h := buildHist(t, 100000, 1<<12, 64, 4)
	dom := h.Domain()

	full := h.RangeCount(0, dom-1)
	if got := h.RangeCount(-500, dom+500); got != full {
		t.Errorf("library clamp: RangeCount(-500, dom+500) = %v, want full-domain %v", got, full)
	}
	if got := h.RangeCount(10, 3); got != 0 {
		t.Errorf("library clamp: RangeCount(10, 3) = %v, want 0", got)
	}
	if got := h.RangeCount(dom+5, dom+9); got != 0 {
		t.Errorf("library clamp: off-domain range = %v, want 0", got)
	}

	r := NewRegistry()
	e, err := r.Publish("zipf", h)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := e.Range(10, 3); err != nil || got != 0 {
		t.Errorf("Entry.Range(10, 3) = (%v, %v), want (0, nil)", got, err)
	}
	if got, err := e.Range(-500, dom+500); err != nil || got != full {
		t.Errorf("Entry.Range clamp = (%v, %v), want (%v, nil)", got, err, full)
	}

	srv, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Registry().Publish("zipf", h); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(url string) map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := get("/v1/hist/zipf/range?lo=10&hi=3")["estimate"].(float64); got != 0 {
		t.Errorf("HTTP empty range estimate = %v, want 0", got)
	}
	if got := get(fmt.Sprintf("/v1/hist/zipf/range?lo=-500&hi=%d", dom+500))["estimate"].(float64); got != full {
		t.Errorf("HTTP clamped range estimate = %v, want %v", got, full)
	}
}

// TestConcurrentQueriesUnderUpdateLoad is the query-plane race smoke CI
// promotes to a dedicated step: many goroutines hammer point/range/batch
// queries (exercising the shared error-tree index of each published
// snapshot) while an updater streams key updates through the incremental
// maintainer, forcing frequent republishes of patched snapshots.
func TestConcurrentQueriesUnderUpdateLoad(t *testing.T) {
	srv, err := NewServer(Config{RepublishEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := buildHist(t, 100000, 1<<12, 128, 5)
	if _, err := srv.Registry().Publish("hot", h); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const queriers = 4
	const updates = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := make([]BatchQuery, 32)
			for i := range queries {
				queries[i] = BatchQuery{Op: "point", Key: int64((g*37 + i) % (1 << 12))}
				if i%3 == 0 {
					queries[i] = BatchQuery{Op: "range", Lo: int64(i), Hi: int64(i + 999)}
				}
			}
			body, _ := json.Marshal(map[string]any{"queries": queries})
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var resp *http.Response
				var err error
				switch i % 3 {
				case 0:
					resp, err = http.Get(ts.URL + fmt.Sprintf("/v1/hist/hot/point?key=%d", (g+i)%(1<<12)))
				case 1:
					resp, err = http.Get(ts.URL + fmt.Sprintf("/v1/hist/hot/range?lo=%d&hi=%d", i%100, i%100+500))
				default:
					resp, err = http.Post(ts.URL+"/v1/hist/hot/query", "application/json", bytes.NewReader(body))
				}
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query returned %d", resp.StatusCode)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
			}
		}(g)
	}
	for i := 0; i < updates; i++ {
		ups := make([]KeyUpdate, 8)
		for j := range ups {
			ups[j] = KeyUpdate{Key: int64((i*8 + j) % (1 << 12)), Delta: 2}
		}
		body, _ := json.Marshal(map[string]any{"updates": ups})
		resp, err := http.Post(ts.URL+"/v1/hist/hot/updates", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("updates returned %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	close(stop)
	wg.Wait()
}

// BenchmarkHTTPBatch measures the end-to-end HTTP batch path — JSON
// decode through pooled buffers, the shared-index query loop, JSON encode
// — per 256-query batch.
func BenchmarkHTTPBatch(b *testing.B) {
	srv, err := NewServer(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	h := buildHist(b, 500000, 1<<16, 1024, 6)
	if _, err := srv.Registry().Publish("bench", h); err != nil {
		b.Fatal(err)
	}
	queries := make([]BatchQuery, 256)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = BatchQuery{Op: "point", Key: int64(i * 251 % (1 << 16))}
		} else {
			queries[i] = BatchQuery{Op: "range", Lo: int64(i * 100), Hi: int64(i*100 + 4096)}
		}
	}
	body, _ := json.Marshal(map[string]any{"queries": queries})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/hist/bench/query", bytes.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// TestBatchPoolDoesNotLeakAcrossRequests pins the pooled-buffer hygiene
// of the batch handler: a request that omits fields (omitempty zero
// values) must not inherit values a previous request left in the
// recycled decode buffers.
func TestBatchPoolDoesNotLeakAcrossRequests(t *testing.T) {
	srv, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := buildHist(t, 100000, 1<<12, 64, 7)
	if _, err := srv.Registry().Publish("zipf", h); err != nil {
		t.Fatal(err)
	}
	post := func(body string) []any {
		t.Helper()
		req := httptest.NewRequest("POST", "/v1/hist/zipf/query", bytes.NewReader([]byte(body)))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("batch returned %d: %s", w.Code, w.Body)
		}
		var out map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out["results"].([]any)
	}
	// Request A populates the pooled buffers with a wide range and a key.
	post(`{"queries":[{"op":"range","lo":1,"hi":4000},{"op":"point","key":99}]}`)
	// Request B omits hi (and key): the range is [5, 0] — empty, so the
	// clamp contract demands exactly 0; the point must be key 0, not 99.
	for i := 0; i < 10; i++ { // several rounds so a pooled object is reused
		results := post(`{"queries":[{"op":"range","lo":5},{"op":"point"}]}`)
		if got := results[0].(map[string]any)["estimate"].(float64); got != 0 {
			t.Fatalf("omitted hi inherited a stale value: estimate %v, want 0", got)
		}
		want := h.PointEstimate(0)
		if got := results[1].(map[string]any)["estimate"].(float64); got != want {
			t.Fatalf("omitted key inherited a stale value: estimate %v, want %v", got, want)
		}
	}
}
