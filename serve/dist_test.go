package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wavelethist"
	"wavelethist/dist"
)

func newDistServer(t *testing.T, workers int) (*Server, *httptest.Server) {
	t.Helper()
	coord, _ := dist.NewLoopbackCluster(workers, 2, dist.Config{})
	s, err := NewServer(Config{Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 15, Domain: 1 << 11, Alpha: 1.1, Seed: 11, ChunkSize: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterDataset("z", ds); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	t.Cleanup(s.Close)
	return s, srv
}

func postBuild(t *testing.T, url string, body string) string {
	t.Helper()
	res, err := http.Post(url+"/v1/build", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out struct {
		Job string `json:"job"`
	}
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("build: HTTP %d", res.StatusCode)
	}
	return out.Job
}

func getJob(t *testing.T, url, id string) JobView {
	t.Helper()
	res, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var v JobView
	if err := json.NewDecoder(res.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDistributedBuildViaAPI runs POST /v1/build with "distributed": true
// against a loopback fleet and checks the uniform job metrics.
func TestDistributedBuildViaAPI(t *testing.T) {
	s, srv := newDistServer(t, 3)

	// Simulated build first, for the comparable modeled metric.
	simID := postBuild(t, srv.URL, `{"name":"hsim","dataset":"z","method":"TwoLevel-S","k":20,"seed":5}`)
	distID := postBuild(t, srv.URL, `{"name":"hdist","dataset":"z","method":"TwoLevel-S","k":20,"seed":5,"distributed":true}`)

	j1, _ := s.jobs.get(simID)
	j2, _ := s.jobs.get(distID)
	if !j1.Wait(30*time.Second) || !j2.Wait(30*time.Second) {
		t.Fatal("jobs did not finish")
	}
	sim := getJob(t, srv.URL, simID)
	dst := getJob(t, srv.URL, distID)
	if sim.State != JobDone || dst.State != JobDone {
		t.Fatalf("states: sim=%+v dist=%+v", sim, dst)
	}
	if sim.Mode != ModeSimulated || dst.Mode != ModeDistributed {
		t.Fatalf("modes: sim=%q dist=%q", sim.Mode, dst.Mode)
	}
	// Uniform metrics: the modeled comm metric must agree across modes;
	// the distributed job must additionally report real wire bytes.
	if sim.ModelCommBytes == 0 || sim.ModelCommBytes != dst.ModelCommBytes {
		t.Errorf("model comm: sim=%d dist=%d", sim.ModelCommBytes, dst.ModelCommBytes)
	}
	if dst.WireBytes <= 0 || dst.CommBytes != dst.WireBytes {
		t.Errorf("distributed wire bytes: wire=%d comm=%d", dst.WireBytes, dst.CommBytes)
	}
	if sim.WireBytes != 0 {
		t.Errorf("simulated job reports wire bytes %d", sim.WireBytes)
	}
	if sim.WallMillis < 0 || dst.WallMillis < 0 || sim.RecordsRead != dst.RecordsRead {
		t.Errorf("records read: sim=%d dist=%d", sim.RecordsRead, dst.RecordsRead)
	}

	// Both publishes must serve identical estimates (same seed).
	for _, q := range []string{"hsim", "hdist"} {
		res, err := http.Get(srv.URL + "/v1/hist/" + q + "/range?lo=0&hi=100")
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("query %s: HTTP %d", q, res.StatusCode)
		}
	}
	e1, _ := s.reg.Lookup("hsim")
	e2, _ := s.reg.Lookup("hdist")
	v1, _ := e1.Range(0, 1<<10)
	v2, _ := e2.Range(0, 1<<10)
	if v1 != v2 {
		t.Errorf("simulated and distributed estimates differ: %v vs %v", v1, v2)
	}
}

// TestDistributedHWTopkViaAPI runs the three-round H-WTopk through
// POST /v1/build on a loopback fleet: the job must report per-round
// metrics (model + wire bytes, candidate-set size), match the simulated
// build's modeled communication, and /v1/stats must expose fleet
// saturation.
func TestDistributedHWTopkViaAPI(t *testing.T) {
	s, srv := newDistServer(t, 3)

	simID := postBuild(t, srv.URL, `{"name":"hsim","dataset":"z","method":"H-WTopk","k":20,"seed":5}`)
	distID := postBuild(t, srv.URL, `{"name":"hdist","dataset":"z","method":"H-WTopk","k":20,"seed":5,"distributed":true}`)
	j1, _ := s.jobs.get(simID)
	j2, _ := s.jobs.get(distID)
	if !j1.Wait(60*time.Second) || !j2.Wait(60*time.Second) {
		t.Fatal("jobs did not finish")
	}
	sim := getJob(t, srv.URL, simID)
	dst := getJob(t, srv.URL, distID)
	if sim.State != JobDone || dst.State != JobDone {
		t.Fatalf("states: sim=%+v dist=%+v", sim, dst)
	}
	if sim.Rounds != 3 || dst.Rounds != 3 {
		t.Fatalf("rounds: sim=%d dist=%d, want 3", sim.Rounds, dst.Rounds)
	}
	if sim.ModelCommBytes == 0 || sim.ModelCommBytes != dst.ModelCommBytes {
		t.Errorf("model comm: sim=%d dist=%d", sim.ModelCommBytes, dst.ModelCommBytes)
	}
	if dst.WireBytes <= 0 || dst.CommBytes != dst.WireBytes {
		t.Errorf("distributed wire bytes: wire=%d comm=%d", dst.WireBytes, dst.CommBytes)
	}
	if len(sim.PerRound) != 3 || len(dst.PerRound) != 3 {
		t.Fatalf("per-round: sim=%d dist=%d entries", len(sim.PerRound), len(dst.PerRound))
	}
	for i := range dst.PerRound {
		if dst.PerRound[i].ModelCommBytes != sim.PerRound[i].ModelCommBytes {
			t.Errorf("round %d model comm: dist=%d sim=%d", i+1,
				dst.PerRound[i].ModelCommBytes, sim.PerRound[i].ModelCommBytes)
		}
		if dst.PerRound[i].WireBytes <= 0 {
			t.Errorf("round %d has no wire bytes", i+1)
		}
		if sim.PerRound[i].WireBytes != 0 {
			t.Errorf("simulated round %d reports wire bytes", i+1)
		}
	}
	if sim.CandidateSetSize <= 0 || sim.CandidateSetSize != dst.CandidateSetSize {
		t.Errorf("candidate set: sim=%d dist=%d", sim.CandidateSetSize, dst.CandidateSetSize)
	}

	// Both publishes serve identical estimates (exact method, same seed).
	e1, _ := s.reg.Lookup("hsim")
	e2, _ := s.reg.Lookup("hdist")
	v1, _ := e1.Range(0, 1<<10)
	v2, _ := e2.Range(0, 1<<10)
	if v1 != v2 {
		t.Errorf("simulated and distributed estimates differ: %v vs %v", v1, v2)
	}

	// /v1/stats surfaces fleet saturation when a coordinator is configured.
	res, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var stats struct {
		Fleet *dist.FleetStats `json:"fleet"`
	}
	if err := json.NewDecoder(res.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Fleet == nil {
		t.Fatal("/v1/stats missing fleet section")
	}
	if len(stats.Fleet.Workers) != 3 {
		t.Errorf("fleet workers: %d, want 3", len(stats.Fleet.Workers))
	}
	if stats.Fleet.ActiveBuilds != 0 || stats.Fleet.PendingSplits != 0 {
		t.Errorf("fleet not idle after builds: %+v", stats.Fleet)
	}
	seenLatency := false
	for _, w := range stats.Fleet.Workers {
		if w.RPCEWMAMillis > 0 {
			seenLatency = true
		}
	}
	if !seenLatency {
		t.Error("no worker reports an RPC-latency EWMA")
	}
}

// TestDistributedRequiresCoordinator: "distributed": true without a
// coordinator is a client error.
func TestDistributedRequiresCoordinator(t *testing.T) {
	s, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ds, _ := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{Records: 1 << 10, Domain: 1 << 8, Seed: 1})
	s.RegisterDataset("z", ds)
	srv := httptest.NewServer(s)
	defer srv.Close()
	res, err := http.Post(srv.URL+"/v1/build", "application/json",
		bytes.NewBufferString(`{"name":"h","dataset":"z","method":"Send-V","distributed":true}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", res.StatusCode)
	}
}

// TestJobCancel: DELETE /v1/jobs/{id} cancels a running build and the
// job lands in state "canceled".
func TestJobCancel(t *testing.T) {
	s, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A large dataset so the build is reliably still running when the
	// cancel lands.
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 21, Domain: 1 << 16, Alpha: 1.1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterDataset("big", ds)
	srv := httptest.NewServer(s)
	defer srv.Close()

	id := postBuild(t, srv.URL, `{"name":"h","dataset":"big","method":"Send-Sketch","k":30,"seed":2}`)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", res.StatusCode)
	}
	j, _ := s.jobs.get(id)
	if !j.Wait(30 * time.Second) {
		t.Fatal("canceled job did not finish")
	}
	if v := getJob(t, srv.URL, id); v.State != JobCanceled {
		t.Fatalf("state after cancel: %q (err=%q)", v.State, v.Error)
	}
	// Canceling a finished job is a no-op.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out struct {
		Canceling bool     `json:"canceling"`
		State     JobState `json:"state"`
	}
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Canceling || out.State != JobCanceled {
		t.Fatalf("re-cancel: %+v", out)
	}
}

// TestServerCloseCancelsJobs: Close cancels running jobs and waits for
// their goroutines.
func TestServerCloseCancelsJobs(t *testing.T) {
	s, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 21, Domain: 1 << 16, Alpha: 1.1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterDataset("big", ds)
	srv := httptest.NewServer(s)
	defer srv.Close()
	id := postBuild(t, srv.URL, `{"name":"h","dataset":"big","method":"Send-Sketch","k":30,"seed":3}`)

	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain job goroutines")
	}
	j, _ := s.jobs.get(id)
	if v := s.jobs.view(j); v.State != JobCanceled && v.State != JobDone {
		t.Fatalf("state after Close: %q", v.State)
	}
}

// stallTransport blocks every map RPC until released, so builds pile up
// pending splits — the harness for the backpressure shed.
type stallTransport struct {
	release chan struct{}
}

func (s *stallTransport) MapSplits(ctx context.Context, addr string, req *dist.MapRequest) (*dist.MapResponse, int64, int64, error) {
	select {
	case <-s.release:
	case <-ctx.Done():
	}
	return nil, 0, 0, ctx.Err()
}
func (s *stallTransport) Release(context.Context, string, *dist.ReleaseRequest) error { return nil }
func (s *stallTransport) Ping(context.Context, string) error                          { return nil }

// TestBuildBackpressure: distributed POST /v1/build is shed with 429 +
// Retry-After once pending splits per alive worker cross the threshold.
func TestBuildBackpressure(t *testing.T) {
	tr := &stallTransport{release: make(chan struct{})}
	coord := dist.NewCoordinator(tr, dist.Config{SplitsPerCall: 1})
	coord.Register("w0", "fake://w0", 1)
	s, err := NewServer(Config{Coordinator: coord, MaxPendingPerWorker: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer close(tr.release)
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 15, Domain: 1 << 10, Alpha: 1.1, Seed: 9, ChunkSize: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSplits(0) < 4 {
		t.Fatalf("want >= 4 splits, have %d", ds.NumSplits(0))
	}
	s.RegisterDataset("z", ds)
	srv := httptest.NewServer(s)
	defer srv.Close()

	// First build is admitted and stalls with most splits pending.
	postBuild(t, srv.URL, `{"name":"h1","dataset":"z","method":"Send-V","distributed":true}`)
	deadline := time.Now().Add(10 * time.Second)
	for coord.FleetStats().PendingSplits/1 < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never saturated: %+v", coord.FleetStats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Second distributed build is shed.
	res, err := http.Post(srv.URL+"/v1/build", "application/json",
		bytes.NewBufferString(`{"name":"h2","dataset":"z","method":"Send-V","distributed":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated build: HTTP %d, want 429", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Simulated builds are not shed by fleet saturation.
	postBuild(t, srv.URL, `{"name":"h3","dataset":"z","method":"TwoLevel-S"}`)
}
