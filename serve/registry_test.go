package serve

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"wavelethist"
)

func buildHist(t testing.TB, records int64, domain int64, k int, seed uint64) *wavelethist.Histogram {
	t.Helper()
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: records, Domain: domain, Alpha: 1.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := wavelethist.Build(ds, wavelethist.TwoLevelS, wavelethist.Options{K: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res.Histogram
}

func TestRegistryPublishLookupVersion(t *testing.T) {
	r := NewRegistry()
	if v := r.Version(); v != 0 {
		t.Fatalf("fresh registry version = %d", v)
	}
	h := buildHist(t, 20000, 1<<12, 20, 1)
	e, err := r.Publish("zipf", h)
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 1 || r.Version() != 1 {
		t.Fatalf("after publish: entry v%d, registry v%d", e.Version, r.Version())
	}
	got, ok := r.Lookup("zipf")
	if !ok || got.H != h {
		t.Fatal("lookup did not return the published histogram")
	}
	// Republish bumps the version and carries stats over.
	got.Stats.Point.Add(7, 0)
	e2, err := r.Publish("zipf", buildHist(t, 20000, 1<<12, 20, 2))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version != 2 {
		t.Fatalf("republished entry version = %d", e2.Version)
	}
	if e2.Stats != got.Stats || e2.Stats.Point.View().Count != 7 {
		t.Fatal("stats did not carry across republish")
	}
	if !r.Drop("zipf") {
		t.Fatal("drop failed")
	}
	if _, ok := r.Lookup("zipf"); ok {
		t.Fatal("lookup succeeded after drop")
	}
	if r.Version() != 3 {
		t.Fatalf("drop did not advance version: %d", r.Version())
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	h := buildHist(t, 1000, 1<<8, 5, 1)
	for _, name := range []string{"", "..", "a/b", "a b", "../../etc/passwd", string(make([]byte, 200))} {
		if _, err := r.Publish(name, h); err == nil {
			t.Errorf("published under bad name %q", name)
		}
	}
}

func TestRegistryPersistence(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := buildHist(t, 20000, 1<<12, 25, 3)
	if _, err := r.Publish("persisted", h); err != nil {
		t.Fatal(err)
	}

	xs := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	ds2, err := wavelethist.NewDataset2DFromPairs(xs, xs, 8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := wavelethist.Build2D(ds2, wavelethist.SendV2D, wavelethist.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish2D("grid", res2.Histogram); err != nil {
		t.Fatal(err)
	}

	// A fresh registry over the same dir serves the same estimates.
	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := r2.Lookup("persisted")
	if !ok {
		t.Fatal("persisted histogram missing after reopen")
	}
	for x := int64(0); x < 1<<12; x += 101 {
		want := h.RangeCount(x, x+50)
		got, err := e.Range(x, x+50)
		if err != nil || got != want {
			t.Fatalf("range(%d) after reload: got %v (%v), want %v", x, got, err, want)
		}
	}
	e2, ok := r2.Lookup("grid")
	if !ok || !e2.Is2D() {
		t.Fatal("2D histogram missing after reopen")
	}
	if got, err := e2.Point2D(3, 3); err != nil || got != res2.Histogram.PointEstimate(3, 3) {
		t.Fatalf("2D point after reload: %v, %v", got, err)
	}

	// A corrupt snapshot file fails the open rather than loading silently.
	if err := os.WriteFile(filepath.Join(dir, "evil.whst"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegistry(dir); err == nil {
		t.Fatal("OpenRegistry accepted a corrupt snapshot")
	}
}

// TestConcurrentReadersDuringPublish is the registry-level race check:
// hammering Point/Range lookups while a writer republishes must be safe
// (run with -race) and every read must see a complete, consistent entry.
func TestConcurrentReadersDuringPublish(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Publish("hot", buildHist(t, 20000, 1<<12, 30, 1)); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				e, ok := r.Lookup("hot")
				if !ok {
					t.Error("entry vanished mid-republish")
					return
				}
				if _, err := e.Point(100); err != nil {
					t.Errorf("point: %v", err)
					return
				}
				if _, err := e.Range(0, 1<<11); err != nil {
					t.Errorf("range: %v", err)
					return
				}
			}
		}()
	}
	for seed := uint64(2); seed < 12; seed++ {
		if _, err := r.Publish("hot", buildHist(t, 5000, 1<<12, 30, seed)); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if got := r.Version(); got != 11 {
		t.Fatalf("version after 11 publishes = %d", got)
	}
}

// BenchmarkServeRange measures parallel range-selectivity throughput on a
// hot k=30 histogram through the full serving path (snapshot load, entry
// lookup, stats recording). Acceptance floor: >= 100k estimates/sec.
func BenchmarkServeRange(b *testing.B) {
	r := NewRegistry()
	if _, err := r.Publish("hot", buildHist(b, 1<<18, 1<<16, 30, 1)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			e, ok := r.Lookup("hot")
			if !ok {
				b.Error("entry missing")
				return
			}
			lo := (i * 7919) % (1 << 15)
			if _, err := e.Range(lo, lo+1024); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "est/s")
}

// BenchmarkServePoint is the companion point-query throughput benchmark.
func BenchmarkServePoint(b *testing.B) {
	r := NewRegistry()
	if _, err := r.Publish("hot", buildHist(b, 1<<18, 1<<16, 30, 1)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			e, _ := r.Lookup("hot")
			if _, err := e.Point((i * 6151) % (1 << 16)); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "est/s")
}
