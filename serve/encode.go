package serve

import (
	"net/http"
	"strconv"
	"sync"
)

// Allocation-free JSON encoding for the single-query endpoints (point,
// range, 2D point and rectangle). These are the latency-sensitive hot
// path a query optimizer hits per plan candidate; going through
// encoding/json + map[string]any cost ~20 allocations per request.
// Instead the response is appended into a pooled byte buffer with
// strconv primitives — the same recycled-buffer discipline the batch
// endpoint already uses — so the steady state allocates nothing.

// estBufPool recycles response buffers across requests. 256 bytes covers
// every single-estimate response (name <= 128 bytes plus six numbers).
var estBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// EstimateField is one echoed query parameter in a single-estimate
// response (see AppendEstimate).
type EstimateField struct {
	Name  string
	Value int64
}

// AppendEstimate builds {"name":…,"version":…,<f1>,…,<fn>,"estimate":…}
// — the exact bytes the single-query endpoints serve. It is exported so
// the router's coalescer can render byte-identical responses from batch
// results. Field names are compile-time literals and histogram names
// are ValidName-constrained (no characters needing JSON escaping), so
// plain quoting is exact. The variadic slice never escapes, so literal
// call sites stay allocation-free.
func AppendEstimate(b []byte, name string, version uint64, est float64, fields ...EstimateField) []byte {
	b = append(b, `{"name":"`...)
	b = append(b, name...)
	b = append(b, `","version":`...)
	b = strconv.AppendUint(b, version, 10)
	for _, f := range fields {
		b = append(b, ',', '"')
		b = append(b, f.Name...)
		b = append(b, '"', ':')
		b = strconv.AppendInt(b, f.Value, 10)
	}
	b = append(b, `,"estimate":`...)
	b = appendJSONFloat(b, est)
	b = append(b, '}', '\n')
	return b
}

// appendJSONFloat appends a float byte-for-byte the way encoding/json
// renders float64s: shortest round-trippable form, fixed notation for
// typical estimate magnitudes, scientific outside [1e-6, 1e21), with
// json's "e-09" → "e-9" exponent cleanup.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := f
	if abs < 0 {
		abs = -abs
	}
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// writeEstimate sends an AppendEstimate response from a pooled buffer.
func writeEstimate(w http.ResponseWriter, name string, version uint64, est float64, fields ...EstimateField) {
	bp := estBufPool.Get().(*[]byte)
	b := AppendEstimate((*bp)[:0], name, version, est, fields...)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
	*bp = b
	estBufPool.Put(bp)
}
