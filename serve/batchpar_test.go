package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestBatchParallelDispatchMatchesScalar pins the parallel dispatch
// contract: once a gathered op class reaches parBatchMin, Entry.batch
// fans it across the parallel segment executors, and every result is
// still bit-identical to the scalar reference loop at every worker
// count (including 0 = automatic).
func TestBatchParallelDispatchMatchesScalar(t *testing.T) {
	r := NewRegistry()
	h := buildHist(t, 150000, 1<<13, 192, 23)
	e, err := r.Publish("zipf", h)
	if err != nil {
		t.Fatal(err)
	}
	dom := h.Domain()
	rng := rand.New(rand.NewSource(23))
	n := 2*parBatchMin + 37 // both classes clear the parallel threshold
	queries := make([]BatchQuery, n)
	for i := range queries {
		switch i % 3 {
		case 0:
			queries[i] = BatchQuery{Op: "point", Key: rng.Int63n(2*dom) - dom/2}
		case 1:
			lo := rng.Int63n(dom)
			queries[i] = BatchQuery{Op: "range", Lo: lo, Hi: lo + rng.Int63n(2000)}
		default:
			queries[i] = BatchQuery{Op: "point", Key: int64(i % 7)} // duplicates
		}
	}
	want := make([]BatchResult, n)
	e.batchScalar(queries, want)
	for _, workers := range []int{0, 1, 2, 3, 8} {
		got := make([]BatchResult, n)
		e.batch(queries, got, batchTuning{vecMin: vecBatchMin, workers: workers})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d query %d (%+v): got %+v, want %+v",
					workers, i, queries[i], got[i], want[i])
			}
		}
	}
}

// TestBatchParallelDispatch2D is the 2D analogue over cells and
// rectangles at the parallel batch size.
func TestBatchParallelDispatch2D(t *testing.T) {
	r := NewRegistry()
	h := buildHist2D(t, 128, 256, 29)
	e, err := r.Publish2D("grid", h)
	if err != nil {
		t.Fatal(err)
	}
	s := h.Side()
	rng := rand.New(rand.NewSource(29))
	n := 2*parBatchMin + 11
	queries := make([]BatchQuery, n)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = BatchQuery{Op: "point", X: rng.Int63n(s), Y: rng.Int63n(s)}
		} else {
			queries[i] = BatchQuery{
				Op:  "range",
				XLo: rng.Int63n(2*s) - s/2, XHi: rng.Int63n(2*s) - s/2,
				YLo: rng.Int63n(s), YHi: rng.Int63n(2 * s),
			}
		}
	}
	want := make([]BatchResult, n)
	e.batchScalar(queries, want)
	for _, workers := range []int{0, 2, 5} {
		got := make([]BatchResult, n)
		e.batch(queries, got, batchTuning{vecMin: vecBatchMin, workers: workers})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d query %d (%+v): got %+v, want %+v",
					workers, i, queries[i], got[i], want[i])
			}
		}
	}
}

// TestBatchTuningKnobs: Config.VecBatchMin resolves 0 to the default,
// keeps positive overrides, and a negative value pins every batch to
// the scalar loop (bit-identical results, by the executor contract).
func TestBatchTuningKnobs(t *testing.T) {
	if got := (Config{}).withDefaults().VecBatchMin; got != vecBatchMin {
		t.Fatalf("default VecBatchMin = %d, want %d", got, vecBatchMin)
	}
	if got := (Config{VecBatchMin: 64}).withDefaults().VecBatchMin; got != 64 {
		t.Fatalf("explicit VecBatchMin = %d, want 64", got)
	}
	if tn := (Config{VecBatchMin: -7}.withDefaults()).tuning(); tn.vecMin != -1 {
		t.Fatalf("negative VecBatchMin resolved to %d, want -1", tn.vecMin)
	}
	if tn := (Config{BatchWorkers: 4}.withDefaults()).tuning(); tn.workers != 4 {
		t.Fatalf("BatchWorkers resolved to %d, want 4", tn.workers)
	}

	// Scalar-only tuning still answers a large batch correctly.
	r := NewRegistry()
	h := buildHist(t, 40000, 1<<10, 64, 31)
	e, err := r.Publish("h", h)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]BatchQuery, 200)
	for i := range queries {
		queries[i] = BatchQuery{Op: "point", Key: int64(i % int(h.Domain()))}
	}
	want := make([]BatchResult, len(queries))
	e.batchScalar(queries, want)
	got := make([]BatchResult, len(queries))
	e.batch(queries, got, batchTuning{vecMin: -1})
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scalar-only query %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRange2DEndpoint: GET /v1/hist/{name}/range on a 2D entry takes
// xlo/xhi/ylo/yhi, echoes them, and returns RangeCount; missing
// parameters and 1D-style lo/hi are a 400.
func TestRange2DEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	h := buildHist2D(t, 64, 128, 37)
	e, err := s.Registry().Publish2D("grid", h)
	if err != nil {
		t.Fatal(err)
	}
	rg := getJSON(t, ts.URL+"/v1/hist/grid/range?xlo=3&xhi=40&ylo=0&yhi=63", http.StatusOK)
	if rg["xlo"].(float64) != 3 || rg["xhi"].(float64) != 40 ||
		rg["ylo"].(float64) != 0 || rg["yhi"].(float64) != 63 {
		t.Fatalf("2D range response: %v", rg)
	}
	if uint64(rg["version"].(float64)) != e.Version {
		t.Fatalf("version %v, want %d", rg["version"], e.Version)
	}
	if rg["estimate"].(float64) != h.RangeCount(3, 40, 0, 63) {
		t.Fatalf("estimate %v, want %v", rg["estimate"], h.RangeCount(3, 40, 0, 63))
	}
	getJSON(t, ts.URL+"/v1/hist/grid/range?lo=1&hi=5", http.StatusBadRequest)
	getJSON(t, ts.URL+"/v1/hist/grid/range?xlo=1&xhi=5&ylo=2", http.StatusBadRequest)
}

// TestSlowLogCoalescedField: slow batch records carry the router's
// coalesced count — present when the X-Wavehist-Coalesced header marked
// the batch as merged, omitted from the JSON otherwise.
func TestSlowLogCoalescedField(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryDir:       dir,
	})
	h := buildHist(t, 20000, 1<<10, 30, 41)
	if _, err := s.Registry().Publish("p", h); err != nil {
		t.Fatal(err)
	}
	var queries []string
	for i := 0; i < 20; i++ {
		queries = append(queries, fmt.Sprintf(`{"op":"point","key":%d}`, i))
	}
	body := `{"queries":[` + strings.Join(queries, ",") + `]}`
	post := func(coalesced string) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/hist/p/query", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if coalesced != "" {
			req.Header.Set("X-Wavehist-Coalesced", coalesced)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch POST = %d", resp.StatusCode)
		}
	}
	post("")
	post("17")
	s.Close() // flush and close the sink

	f, err := os.Open(filepath.Join(dir, "slow-queries.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []map[string]any
	scan := bufio.NewScanner(f)
	for scan.Scan() {
		var m map[string]any
		if err := json.Unmarshal(scan.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", scan.Text(), err)
		}
		if m["op"] == "batch" {
			recs = append(recs, m)
		}
	}
	if len(recs) != 2 {
		t.Fatalf("got %d batch records, want 2", len(recs))
	}
	if _, present := recs[0]["coalesced"]; present {
		t.Fatalf("direct batch record has coalesced field: %v", recs[0])
	}
	if recs[1]["coalesced"].(float64) != 17 {
		t.Fatalf("coalesced batch record: %v", recs[1])
	}
	if recs[0]["batch"].(float64) != 20 || recs[1]["batch"].(float64) != 20 {
		t.Fatalf("batch sizes: %v / %v", recs[0], recs[1])
	}
}
