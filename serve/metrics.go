package serve

import (
	"log"
	"time"

	"wavelethist/internal/obs"
)

// The serve-side observability plane: a per-server obs.Registry exposed
// at GET /metrics. Query latencies come from the same histogram-backed
// OpStats /v1/stats reports (per-entry stats merged into one family per
// op class at scrape time), build counters are recorded by the job
// runner, and replication / fleet posture is collected live.

func (s *Server) initMetrics() {
	m := obs.NewRegistry()
	s.metrics = m
	const buildHelp = "Build jobs finished, by outcome."
	s.buildsDone = m.Counter("wavehist_builds_total", buildHelp, obs.L("state", "done"))
	s.buildsFailed = m.Counter("wavehist_builds_total", buildHelp, obs.L("state", "failed"))
	s.buildsCanceled = m.Counter("wavehist_builds_total", buildHelp, obs.L("state", "canceled"))
	s.buildDur = m.Histogram("wavehist_build_duration_seconds", "Wall time of finished build jobs (all outcomes).")
	s.slowQueries = m.Counter("wavehist_slow_queries_total", "Queries over Config.SlowQueryThreshold.")
	m.Collect(s.collectMetrics)
	if s.cfg.Coordinator != nil {
		m.Collect(s.cfg.Coordinator.Collect)
	}
}

// Metrics exposes the server's metrics registry (GET /metrics).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// collectMetrics emits the scrape-time families: per-op query latency
// histograms and totals (merged across every published histogram's
// stats), registry posture, job queue depth, and replication lag.
func (s *Server) collectMetrics(w *obs.Writer) {
	snap := s.reg.Snapshot()
	type opAgg struct {
		hist  obs.HistView
		count int64
	}
	ops := [5]opAgg{}
	opNames := [5]string{"point", "range", "batch", "batch_queries", "update"}
	for _, n := range snap.Names() {
		e, _ := snap.Lookup(n)
		for i, o := range [5]*OpStats{
			&e.Stats.Point, &e.Stats.Range, &e.Stats.Batch, &e.Stats.BatchQueries, &e.Stats.Update,
		} {
			ops[i].hist.Merge(o.HistView())
			ops[i].count += o.Count()
		}
	}
	const qHelp = "Query latency by operation class (timed operations only)."
	const tHelp = "Operations served by class (batch_queries counts sub-queries inside batches)."
	for i, name := range opNames {
		w.Histogram("wavehist_query_duration_seconds", qHelp, ops[i].hist, obs.L("op", name))
		w.Counter("wavehist_queries_total", tHelp, float64(ops[i].count), obs.L("op", name))
	}
	w.Gauge("wavehist_registry_version", "Current registry version.", float64(snap.Version()))
	w.Gauge("wavehist_histograms", "Published histograms.", float64(len(snap.Names())))
	w.Gauge("wavehist_jobs_running", "Build jobs currently running.", float64(s.jobs.running()))
	w.Gauge("wavehist_builds_inflight_slots", "Build-concurrency slots in use.", float64(len(s.buildSem)))

	// Replication posture. A primary reports read_only 0 and lag 0, so
	// the families exist on every daemon and dashboards need no
	// role-conditional queries.
	ro := 0.0
	if s.readOnly.Load() {
		ro = 1
	}
	w.Gauge("wavehist_read_only", "1 when serving as a read-only replica.", ro)
	w.Gauge("wavehist_epoch", "Registry epoch of this server's write lineage (bumped on cold start and promotion).", float64(s.epoch.Load()))
	var lag, applied, sinceSync, replEpoch, resets float64
	if st := s.repl.Load(); st != nil {
		lag = float64(st.LagVersions)
		applied = float64(st.Version)
		replEpoch = float64(st.Epoch)
		resets = float64(st.EpochResets)
		switch {
		case !st.SyncedAt.IsZero():
			sinceSync = time.Since(st.SyncedAt).Seconds()
		case !st.FirstAttempt.IsZero():
			// Never synced successfully: report time since the first
			// attempt so the sync-stalled alert can fire for a replica
			// whose primary was dead from the start.
			sinceSync = time.Since(st.FirstAttempt).Seconds()
		}
	}
	w.Gauge("wavehist_repl_lag_versions", "Registry versions the primary was ahead at the last pull (0 on a primary).", lag)
	w.Gauge("wavehist_repl_applied_version", "Last registry version applied from the primary.", applied)
	w.Gauge("wavehist_repl_seconds_since_sync", "Seconds since the last successful pull (time since first failed attempt while never synced).", sinceSync)
	w.Gauge("wavehist_repl_epoch", "Primary registry epoch the replication cursor was minted under (0 = never synced).", replEpoch)
	w.Counter("wavehist_repl_epoch_resets_total", "Replication cursor resets forced by a primary epoch change.", resets)
}

// slowQuery logs one structured line (and counts) when a query exceeded
// the configured threshold. Off unless Config.SlowQueryThreshold > 0.
// coalesced is the number of original client queries the router's
// coalescer folded into this request (0 for direct traffic).
func (s *Server) slowQuery(op, name string, batch, coalesced int, d time.Duration) {
	if s.cfg.SlowQueryThreshold <= 0 || d < s.cfg.SlowQueryThreshold {
		return
	}
	s.slowQueries.Inc()
	logger := s.cfg.SlowQueryLog
	if logger == nil {
		logger = log.Default()
	}
	if coalesced > 0 {
		logger.Printf("slow-query op=%s name=%s micros=%d batch=%d coalesced=%d", op, name, d.Microseconds(), batch, coalesced)
	} else {
		logger.Printf("slow-query op=%s name=%s micros=%d batch=%d", op, name, d.Microseconds(), batch)
	}
	if s.slowLog != nil {
		s.slowLog.record(op, name, batch, coalesced, d)
	}
}
