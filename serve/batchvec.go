package serve

import (
	"fmt"
	"sync"
)

// The vectorized batch dispatch: above vecBatchMin queries, Entry.Batch
// stops answering sub-queries one scalar walk at a time and instead
// gathers each op class into key arrays, hands them to the wavelet
// layer's shared-walk executors (Histogram.BatchPoints / BatchRanges /
// Histogram2D.BatchPoints), and scatters the answers back in request
// order. Results are bit-identical to the scalar loop — the executors
// guarantee bitwise equality with PointEstimate / RangeCount, and
// malformed queries are validated (with the scalar path's exact error
// strings) before anything reaches an executor. Scratch lives in a pool
// so the steady state stays allocation-free on the handler's reused
// slices.

// vecBatchMin is the dispatch threshold: below it, per-query sort and
// sweep setup costs more than the scalar walks it saves.
const vecBatchMin = 16

type vecScratch struct {
	keys []int64 // 1D point keys
	kidx []int32 // their positions in the request
	rlo  []int64 // range bounds
	rhi  []int64
	ridx []int32
	x2   []int64 // 2D cell coordinates
	y2   []int64
	gidx []int32
	out  []float64
}

var vecScratchPool = sync.Pool{New: func() any { return new(vecScratch) }}

func (sc *vecScratch) ensureOut(n int) []float64 {
	if cap(sc.out) < n {
		sc.out = make([]float64, n)
	}
	sc.out = sc.out[:n]
	return sc.out
}

// batchVectorized is Batch's body for large batches. Phase 1 validates
// every query — reusing the scalar helpers so error strings match bit
// for bit — and gathers the valid ones per op class; phase 2 runs one
// shared-walk executor per class and scatters results.
func (e *Entry) batchVectorized(queries []BatchQuery, results []BatchResult) {
	sc := vecScratchPool.Get().(*vecScratch)
	keys, kidx := sc.keys[:0], sc.kidx[:0]
	rlo, rhi, ridx := sc.rlo[:0], sc.rhi[:0], sc.ridx[:0]
	x2, y2, gidx := sc.x2[:0], sc.y2[:0], sc.gidx[:0]
	is2D := e.Is2D()
	for i := range queries {
		q := &queries[i]
		switch q.Op {
		case "point":
			if is2D {
				s := e.H2D.Side()
				if q.X < 0 || q.X >= s || q.Y < 0 || q.Y >= s {
					_, err := e.batchPoint2D(q.X, q.Y)
					results[i] = BatchResult{Error: err.Error()}
					continue
				}
				x2 = append(x2, q.X)
				y2 = append(y2, q.Y)
				gidx = append(gidx, int32(i))
			} else {
				if q.Key < 0 || q.Key >= e.H.Domain() {
					_, err := e.batchPoint(q.Key)
					results[i] = BatchResult{Error: err.Error()}
					continue
				}
				keys = append(keys, q.Key)
				kidx = append(kidx, int32(i))
			}
		case "range":
			if is2D {
				_, err := e.batchRange(q.Lo, q.Hi)
				results[i] = BatchResult{Error: err.Error()}
				continue
			}
			// Ranges are never rejected (the clamp contract); all go to
			// the executor.
			rlo = append(rlo, q.Lo)
			rhi = append(rhi, q.Hi)
			ridx = append(ridx, int32(i))
		default:
			results[i] = BatchResult{Error: fmt.Sprintf("unknown op %q (want point or range)", q.Op)}
		}
	}
	if len(keys) > 0 {
		out := sc.ensureOut(len(keys))
		e.H.BatchPoints(keys, out)
		for m, i := range kidx {
			results[i] = BatchResult{Estimate: out[m]}
		}
	}
	if len(rlo) > 0 {
		out := sc.ensureOut(len(rlo))
		e.H.BatchRanges(rlo, rhi, out)
		for m, i := range ridx {
			results[i] = BatchResult{Estimate: out[m]}
		}
	}
	if len(x2) > 0 {
		out := sc.ensureOut(len(x2))
		e.H2D.BatchPoints(x2, y2, out)
		for m, i := range gidx {
			results[i] = BatchResult{Estimate: out[m]}
		}
	}
	sc.keys, sc.kidx = keys, kidx
	sc.rlo, sc.rhi, sc.ridx = rlo, rhi, ridx
	sc.x2, sc.y2, sc.gidx = x2, y2, gidx
	vecScratchPool.Put(sc)
}
