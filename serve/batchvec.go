package serve

import (
	"fmt"
	"sync"
)

// The vectorized batch dispatch: above vecBatchMin queries, Entry.Batch
// stops answering sub-queries one scalar walk at a time and instead
// gathers each op class into key arrays, hands them to the wavelet
// layer's shared-walk executors (Histogram.BatchPoints / BatchRanges /
// Histogram2D.BatchPoints / BatchRanges), and scatters the answers back
// in request order. Results are bit-identical to the scalar loop — the
// executors guarantee bitwise equality with PointEstimate / RangeCount,
// and malformed queries are validated (with the scalar path's exact
// error strings) before anything reaches an executor. Scratch lives in
// a pool so the steady state stays allocation-free on the handler's
// reused slices. Classes that gather parBatchMin or more queries
// additionally fan across the wavelet layer's parallel segment
// executors (bit-identical by construction).

// vecBatchMin is the default dispatch threshold: below it, per-query
// sort and sweep setup costs more than the scalar walks it saves.
// Config.VecBatchMin overrides it per server.
const vecBatchMin = 16

// parBatchMin is the per-class size at which the vectorized executors
// fan out across the parallel worker pool: below it, goroutine
// scheduling costs more than the sweep it splits.
const parBatchMin = 1024

type vecScratch struct {
	keys  []int64 // 1D point keys
	kidx  []int32 // their positions in the request
	rlo   []int64 // 1D range bounds
	rhi   []int64
	ridx  []int32
	x2    []int64 // 2D cell coordinates
	y2    []int64
	gidx  []int32
	rx2lo []int64 // 2D rectangle bounds
	rx2hi []int64
	ry2lo []int64
	ry2hi []int64
	r2idx []int32
	out   []float64
}

var vecScratchPool = sync.Pool{New: func() any { return new(vecScratch) }}

func (sc *vecScratch) ensureOut(n int) []float64 {
	if cap(sc.out) < n {
		sc.out = make([]float64, n)
	}
	sc.out = sc.out[:n]
	return sc.out
}

// batchVectorized is Batch's body for large batches. Phase 1 validates
// every query — reusing the scalar helpers so error strings match bit
// for bit — and gathers the valid ones per op class; phase 2 runs one
// shared-walk executor per class (parallel once the class reaches
// parBatchMin, unless workers pins it to 1) and scatters results.
func (e *Entry) batchVectorized(queries []BatchQuery, results []BatchResult, workers int) {
	sc := vecScratchPool.Get().(*vecScratch)
	keys, kidx := sc.keys[:0], sc.kidx[:0]
	rlo, rhi, ridx := sc.rlo[:0], sc.rhi[:0], sc.ridx[:0]
	x2, y2, gidx := sc.x2[:0], sc.y2[:0], sc.gidx[:0]
	rx2lo, rx2hi := sc.rx2lo[:0], sc.rx2hi[:0]
	ry2lo, ry2hi, r2idx := sc.ry2lo[:0], sc.ry2hi[:0], sc.r2idx[:0]
	is2D := e.Is2D()
	for i := range queries {
		q := &queries[i]
		switch q.Op {
		case "point":
			if is2D {
				s := e.H2D.Side()
				if q.X < 0 || q.X >= s || q.Y < 0 || q.Y >= s {
					_, err := e.batchPoint2D(q.X, q.Y)
					results[i] = BatchResult{Error: err.Error()}
					continue
				}
				x2 = append(x2, q.X)
				y2 = append(y2, q.Y)
				gidx = append(gidx, int32(i))
			} else {
				if q.Key < 0 || q.Key >= e.H.Domain() {
					_, err := e.batchPoint(q.Key)
					results[i] = BatchResult{Error: err.Error()}
					continue
				}
				keys = append(keys, q.Key)
				kidx = append(kidx, int32(i))
			}
		case "range":
			// Ranges are never rejected (the clamp contract); all go to
			// the executor of the entry's dimensionality.
			if is2D {
				rx2lo = append(rx2lo, q.XLo)
				rx2hi = append(rx2hi, q.XHi)
				ry2lo = append(ry2lo, q.YLo)
				ry2hi = append(ry2hi, q.YHi)
				r2idx = append(r2idx, int32(i))
			} else {
				rlo = append(rlo, q.Lo)
				rhi = append(rhi, q.Hi)
				ridx = append(ridx, int32(i))
			}
		default:
			results[i] = BatchResult{Error: fmt.Sprintf("unknown op %q (want point or range)", q.Op)}
		}
	}
	// parallelOK gates each class on size: the segment executors are
	// bit-identical at any worker count, so this is purely a cost call.
	parallelOK := func(n int) bool { return workers != 1 && n >= parBatchMin }
	if len(keys) > 0 {
		out := sc.ensureOut(len(keys))
		if parallelOK(len(keys)) {
			e.H.BatchPointsParallel(keys, out, workers)
		} else {
			e.H.BatchPoints(keys, out)
		}
		for m, i := range kidx {
			results[i] = BatchResult{Estimate: out[m]}
		}
	}
	if len(rlo) > 0 {
		out := sc.ensureOut(len(rlo))
		if parallelOK(len(rlo)) {
			e.H.BatchRangesParallel(rlo, rhi, out, workers)
		} else {
			e.H.BatchRanges(rlo, rhi, out)
		}
		for m, i := range ridx {
			results[i] = BatchResult{Estimate: out[m]}
		}
	}
	if len(x2) > 0 {
		out := sc.ensureOut(len(x2))
		if parallelOK(len(x2)) {
			e.H2D.BatchPointsParallel(x2, y2, out, workers)
		} else {
			e.H2D.BatchPoints(x2, y2, out)
		}
		for m, i := range gidx {
			results[i] = BatchResult{Estimate: out[m]}
		}
	}
	if len(rx2lo) > 0 {
		out := sc.ensureOut(len(rx2lo))
		if parallelOK(len(rx2lo)) {
			e.H2D.BatchRangesParallel(rx2lo, rx2hi, ry2lo, ry2hi, out, workers)
		} else {
			e.H2D.BatchRanges(rx2lo, rx2hi, ry2lo, ry2hi, out)
		}
		for m, i := range r2idx {
			results[i] = BatchResult{Estimate: out[m]}
		}
	}
	sc.keys, sc.kidx = keys, kidx
	sc.rlo, sc.rhi, sc.ridx = rlo, rhi, ridx
	sc.x2, sc.y2, sc.gidx = x2, y2, gidx
	sc.rx2lo, sc.rx2hi = rx2lo, rx2hi
	sc.ry2lo, sc.ry2hi, sc.r2idx = ry2lo, ry2hi, r2idx
	vecScratchPool.Put(sc)
}
