package serve

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Registry epochs. A server's epoch names its write lineage: it is
// bumped on every cold start and on every promotion, so two processes
// that could each believe they are the primary of a shard never share
// one. The epoch rides in the replication pull protocol — a replica
// whose cursor was minted under a different epoch resets to zero and
// re-snapshots instead of silently serving stale data (a restarted
// primary's version counter restarts from zero, so a replica already
// synced past it would otherwise pull nothing forever) — and in the
// promote/demote fencing handshake the router uses during failover.
//
// Persistence: with a SnapshotDir the epoch lives in an EPOCH file next
// to the histogram snapshots (read+1+rewrite on cold start, rewritten
// on promotion), giving a true monotonic counter per data directory.
// In-memory servers draw a random epoch instead: uniqueness across
// restarts is what fencing needs, and a fresh process has no counter to
// continue.

// epochFile is the name of the persisted epoch counter in SnapshotDir.
const epochFile = "EPOCH"

// ErrNotReplica is returned by ReplApply when the server is writable: a
// primary must never apply replicated entries on top of its own writes.
var ErrNotReplica = errors.New("serve: server is writable; refusing to apply replicated state")

// Epoch returns the server's current registry epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// initEpoch resolves the server's starting epoch: explicit Config.Epoch
// wins (tests and embedders), else the persisted counter + 1, else a
// random draw for in-memory servers.
func (s *Server) initEpoch() error {
	if s.cfg.Epoch != 0 {
		s.epoch.Store(s.cfg.Epoch)
		if s.cfg.SnapshotDir != "" {
			return writeEpochFile(s.cfg.SnapshotDir, s.cfg.Epoch)
		}
		return nil
	}
	if s.cfg.SnapshotDir == "" {
		s.epoch.Store(randomEpoch())
		return nil
	}
	prev, err := readEpochFile(s.cfg.SnapshotDir)
	if err != nil {
		return err
	}
	next := prev + 1
	if err := writeEpochFile(s.cfg.SnapshotDir, next); err != nil {
		return err
	}
	s.epoch.Store(next)
	return nil
}

// bumpEpoch advances the epoch to at least want (0 = current+1) and
// persists it. Callers hold promoteMu.
func (s *Server) bumpEpoch(want uint64) (uint64, error) {
	next := s.epoch.Load() + 1
	if want > next {
		next = want
	}
	if s.cfg.SnapshotDir != "" {
		if err := writeEpochFile(s.cfg.SnapshotDir, next); err != nil {
			return 0, err
		}
	}
	s.epoch.Store(next)
	return next, nil
}

func readEpochFile(dir string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(dir, epochFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("serve: read epoch: %w", err)
	}
	v, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if perr != nil {
		return 0, fmt.Errorf("serve: corrupt epoch file %s: %w", filepath.Join(dir, epochFile), perr)
	}
	return v, nil
}

// writeEpochFile persists the counter via the same tmp+rename dance the
// registry uses for snapshots, so a crash mid-write never truncates it.
func writeEpochFile(dir string, v uint64) error {
	path := filepath.Join(dir, epochFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(v, 10)+"\n"), 0o644); err != nil {
		return fmt.Errorf("serve: write epoch: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: write epoch: %w", err)
	}
	return nil
}

// randomEpoch draws a non-zero epoch in [2^32, 2^62) for in-memory
// servers: large enough never to collide with a file-backed counter,
// bounded so fencing tokens (max-known + 1) cannot overflow.
func randomEpoch() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a fixed high bit so the epoch is at least non-zero.
		return 1 << 40
	}
	return 1<<32 | binary.LittleEndian.Uint64(b[:])%(1<<62-1<<32)
}

// PromoteEpoch flips a read-only replica writable under an epoch
// fencing token. token 0 bumps the local counter (manual promotion);
// a non-zero token must exceed the current epoch — a stale router
// re-sending an old fence cannot promote a node the cluster has moved
// past. Returns the new epoch.
func (s *Server) PromoteEpoch(token uint64) (uint64, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if !s.readOnly.Load() {
		return 0, fmt.Errorf("serve: already writable")
	}
	if token != 0 && token <= s.epoch.Load() {
		return 0, fmt.Errorf("serve: stale fencing token %d (epoch is %d)", token, s.epoch.Load())
	}
	epoch, err := s.bumpEpoch(token)
	if err != nil {
		return 0, err
	}
	s.readOnly.Store(false)
	return epoch, nil
}

// Demote fences a writable server read-only. A non-zero token must
// strictly exceed the server's epoch: the legitimate primary (whose
// epoch IS the cluster's fence) can never be demoted by a replay of its
// own token, while a superseded one (lower epoch) always can. token 0
// demotes unconditionally — the manual operator path. Returns false if
// the server was already read-only.
func (s *Server) Demote(token uint64) (bool, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.readOnly.Load() {
		return false, nil
	}
	if token != 0 && token <= s.epoch.Load() {
		return false, fmt.Errorf("serve: stale fencing token %d (epoch is %d)", token, s.epoch.Load())
	}
	s.readOnly.Store(true)
	return true, nil
}

// ReplApply runs fn (a replication apply) only while the server is a
// replica, holding the promotion lock shared so a concurrent promotion
// either completes strictly before the apply starts (the apply is then
// refused) or strictly after it finishes (the applied pull is a
// complete prefix). Promotion mid-pull can therefore never interleave
// with a half-applied batch — the view is always the old or the new
// epoch's prefix, never a torn mix.
func (s *Server) ReplApply(fn func() error) error {
	s.promoteMu.RLock()
	defer s.promoteMu.RUnlock()
	if !s.readOnly.Load() {
		return ErrNotReplica
	}
	return fn()
}
