package serve

import (
	"os"
	"path/filepath"
	"strings"

	"wavelethist"
)

// Maintainer persistence. A maintained histogram's full state — the
// tracked retained + shadow coefficient set — is saved next to the
// registry snapshots as <name>.wmnt (the versioned WMNT codec in the
// wavelethist serialize layer) whenever the maintainer is created or
// republishes. On restart the server re-seeds its maintainers from those
// files, so incremental maintenance survives a daemon bounce with the
// exact partition it had at the last republish instead of falling back to
// a cold re-seed from the published top-k (which would forget every
// shadow coefficient adopted since the build).
//
// Persistence is best-effort and crash-consistent: files are written
// tmp+rename, and a .wmnt that fails validation or no longer matches its
// registry entry (dropped name, 2D rebuild, different domain) is removed
// rather than loaded.

// extMaint is the maintainer snapshot extension; OpenRegistry ignores it.
const extMaint = ".wmnt"

// persistMaint writes name's maintainer state. Best-effort: an error
// costs restart freshness, never a request.
func (s *Server) persistMaint(name string, mh *wavelethist.MaintainedHistogram) {
	if s.cfg.SnapshotDir == "" {
		return
	}
	b, err := mh.MarshalBinary()
	if err != nil {
		return
	}
	final := filepath.Join(s.cfg.SnapshotDir, name+extMaint)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		os.Remove(tmp)
		return
	}
	_ = os.Rename(tmp, final)
}

// removeMaintFile deletes name's maintainer snapshot (its lineage was
// superseded by a rebuild, or the name was dropped).
func (s *Server) removeMaintFile(name string) {
	if s.cfg.SnapshotDir == "" {
		return
	}
	os.Remove(filepath.Join(s.cfg.SnapshotDir, name+extMaint))
}

// loadMaints re-seeds live maintainers from *.wmnt files at startup,
// after the registry itself has loaded. Runs before the server handles
// requests, so it can write s.maints without locking.
func (s *Server) loadMaints() {
	dir := s.cfg.SnapshotDir
	if dir == "" {
		return
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), extMaint) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), extMaint)
		path := filepath.Join(dir, de.Name())
		cur, ok := s.reg.Lookup(name)
		if !ok || cur.Is2D() {
			os.Remove(path) // orphaned by a drop or a 2D rebuild
			continue
		}
		b, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		mh, err := wavelethist.UnmarshalMaintainedHistogram(b)
		if err != nil || mh.Domain() != cur.H.Domain() {
			os.Remove(path) // corrupt or from a different-domain build
			continue
		}
		s.maints[name] = &maintained{mh: mh, base: cur.Version}
	}
}
