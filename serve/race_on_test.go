//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation makes sync.Pool allocate, so allocation-count
// properties only hold without it.
const raceEnabled = true
