package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"wavelethist"
)

// Async build jobs: POST /v1/build launches one goroutine that runs a
// construction method — on the simulated cluster or, when a coordinator
// is configured, on the distributed worker fleet — over a registered
// dataset and publishes the result; GET /v1/jobs/{id} polls it and
// DELETE /v1/jobs/{id} cancels it. Builds are the expensive,
// minutes-long operation the registry's snapshot swap exists to hide
// from query traffic.

// JobState is a build job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Build modes.
const (
	ModeSimulated   = "simulated"
	ModeDistributed = "distributed"
)

// Job is one asynchronous build. Fields other than ID are guarded by the
// owning jobSet's mutex; read them through View or Wait.
type Job struct {
	ID string

	name    string
	dataset string
	method  string
	mode    string

	state JobState
	err   string

	// distJobID is the coordinator-assigned build ID of a distributed
	// job, installed by the job-ID sink as soon as the fan-out starts —
	// the key for GET /v1/jobs/{id}/trace.
	distJobID string

	cancel context.CancelFunc

	// Build outcome, valid once state == JobDone. Metrics are recorded
	// uniformly for simulated and distributed builds so the two modes are
	// directly comparable in GET /v1/jobs/{id}: commBytes is mode-native
	// (modeled for simulated, measured for distributed), modelCommBytes
	// uses identical accounting in both modes, wireBytes is real traffic
	// (0 when simulated).
	version        uint64
	k              int
	commBytes      int64
	modelCommBytes int64
	wireBytes      int64
	rounds         int
	perRound       []RoundView
	candidateSet   int
	cachedSplits   int
	recordsRead    int64
	bytesRead      int64
	wallMillis     int64
	simSeconds     float64

	done chan struct{}
}

// RoundView is one round's profile in GET /v1/jobs/{id}: the modeled
// communication per round in both modes, plus the measured wire traffic
// and fan-out counters of distributed builds.
type RoundView struct {
	Round          int   `json:"round"`
	ModelCommBytes int64 `json:"model_comm_bytes"`
	WireBytes      int64 `json:"wire_bytes,omitempty"`
	RPCs           int   `json:"rpcs,omitempty"`
	Retries        int   `json:"retries,omitempty"`
	ReplayedSplits int   `json:"replayed_splits,omitempty"`
	CachedSplits   int   `json:"cached_splits,omitempty"`
	Restored       bool  `json:"restored,omitempty"`
}

// JobView is the JSON form of a job.
type JobView struct {
	ID      string   `json:"id"`
	Name    string   `json:"name"`
	Dataset string   `json:"dataset"`
	Method  string   `json:"method"`
	Mode    string   `json:"mode"`
	State   JobState `json:"state"`
	Error   string   `json:"error,omitempty"`
	// DistJobID is the coordinator's build identifier for distributed
	// jobs ("build-…"); the span trace lives at /v1/jobs/{id}/trace.
	DistJobID string `json:"dist_job_id,omitempty"`

	Version          uint64      `json:"version,omitempty"`
	K                int         `json:"k,omitempty"`
	CommBytes        int64       `json:"comm_bytes,omitempty"`
	ModelCommBytes   int64       `json:"model_comm_bytes,omitempty"`
	WireBytes        int64       `json:"wire_bytes,omitempty"`
	Rounds           int         `json:"rounds,omitempty"`
	PerRound         []RoundView `json:"per_round,omitempty"`
	CandidateSetSize int         `json:"candidate_set_size,omitempty"`
	CachedSplits     int         `json:"cached_splits,omitempty"`
	RecordsRead      int64       `json:"records_read,omitempty"`
	BytesRead        int64       `json:"bytes_read,omitempty"`
	WallMillis       int64       `json:"wall_millis,omitempty"`
	SimulatedSeconds float64     `json:"simulated_seconds,omitempty"`
}

type jobSet struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
	// order holds job IDs oldest-first so retention can prune finished
	// jobs once the set exceeds maxJobs (running jobs are never pruned).
	order   []string
	maxJobs int
}

func newJobSet(maxJobs int) *jobSet {
	return &jobSet{jobs: map[string]*Job{}, maxJobs: maxJobs}
}

func (js *jobSet) create(name, dataset, method, mode string, cancel context.CancelFunc) *Job {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%d", js.seq),
		name:    name,
		dataset: dataset,
		method:  method,
		mode:    mode,
		state:   JobRunning,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	js.jobs[j.ID] = j
	js.order = append(js.order, j.ID)
	if js.maxJobs > 0 && len(js.jobs) > js.maxJobs {
		js.prune()
	}
	return j
}

// prune drops the oldest finished jobs until the set fits maxJobs.
// Caller holds js.mu.
func (js *jobSet) prune() {
	kept := js.order[:0]
	for _, id := range js.order {
		j := js.jobs[id]
		if len(js.jobs) > js.maxJobs && j != nil && j.state != JobRunning {
			delete(js.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	js.order = kept
}

func (js *jobSet) get(id string) (*Job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	return j, ok
}

func (js *jobSet) view(j *Job) JobView {
	js.mu.Lock()
	defer js.mu.Unlock()
	return JobView{
		ID:               j.ID,
		Name:             j.name,
		Dataset:          j.dataset,
		Method:           j.method,
		Mode:             j.mode,
		State:            j.state,
		Error:            j.err,
		DistJobID:        j.distJobID,
		Version:          j.version,
		K:                j.k,
		CommBytes:        j.commBytes,
		ModelCommBytes:   j.modelCommBytes,
		WireBytes:        j.wireBytes,
		Rounds:           j.rounds,
		PerRound:         j.perRound,
		CandidateSetSize: j.candidateSet,
		CachedSplits:     j.cachedSplits,
		RecordsRead:      j.recordsRead,
		BytesRead:        j.bytesRead,
		WallMillis:       j.wallMillis,
		SimulatedSeconds: j.simSeconds,
	}
}

// fail finishes a job unsuccessfully and returns the state it landed in
// (JobCanceled when the error is the context's own cancellation).
func (js *jobSet) fail(j *Job, err error) JobState {
	js.mu.Lock()
	j.state = JobFailed
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		j.state = JobCanceled
	}
	j.err = err.Error()
	st := j.state
	js.mu.Unlock()
	close(j.done)
	return st
}

// setDistJobID installs the coordinator-assigned build ID (job-ID sink
// callback; safe from the build goroutine while views are served).
func (js *jobSet) setDistJobID(j *Job, distID string) {
	js.mu.Lock()
	j.distJobID = distID
	js.mu.Unlock()
}

func (js *jobSet) distJobID(j *Job) string {
	js.mu.Lock()
	defer js.mu.Unlock()
	return j.distJobID
}

// running counts jobs currently in JobRunning (the jobs-running gauge).
func (js *jobSet) running() int {
	js.mu.Lock()
	defer js.mu.Unlock()
	n := 0
	for _, j := range js.jobs {
		if j.state == JobRunning {
			n++
		}
	}
	return n
}

func (js *jobSet) finish(j *Job, e *Entry, k int, res *wavelethist.Result) {
	js.mu.Lock()
	j.state = JobDone
	j.version = e.Version
	j.k = k
	if res != nil {
		j.commBytes = res.CommBytes
		j.modelCommBytes = res.ModelCommBytes
		j.wireBytes = res.WireBytes
		j.rounds = res.Rounds
		for _, r := range res.PerRound {
			j.perRound = append(j.perRound, RoundView{
				Round:          r.Round,
				ModelCommBytes: r.ModelCommBytes,
				WireBytes:      r.WireBytes,
				RPCs:           r.RPCs,
				Retries:        r.Retries,
				ReplayedSplits: r.ReplayedSplits,
				CachedSplits:   r.CachedSplits,
				Restored:       r.Restored,
			})
		}
		j.candidateSet = res.CandidateSetSize
		j.cachedSplits = res.CachedSplits
		j.recordsRead = res.RecordsRead
		j.bytesRead = res.BytesRead
		j.wallMillis = res.WallTime.Milliseconds()
		j.simSeconds = res.SimulatedSeconds()
	}
	js.mu.Unlock()
	close(j.done)
}

// requestCancel triggers the job's context cancellation; the build
// goroutine observes it and moves the job to JobCanceled. Returns false
// if the job already finished.
func (js *jobSet) requestCancel(j *Job) bool {
	js.mu.Lock()
	running := j.state == JobRunning
	cancel := j.cancel
	js.mu.Unlock()
	if !running {
		return false
	}
	if cancel != nil {
		cancel()
	}
	return true
}

// Wait blocks until the job leaves JobRunning (test helper; HTTP clients
// poll GET /v1/jobs/{id} instead) or the timeout elapses.
func (j *Job) Wait(timeout time.Duration) bool {
	select {
	case <-j.done:
		return true
	case <-time.After(timeout):
		return false
	}
}
