package serve

import (
	"fmt"
	"sync"
	"time"

	"wavelethist"
)

// Async build jobs: POST /v1/build launches one goroutine that runs a
// (simulated-cluster) construction method over a registered dataset and
// publishes the result; GET /v1/jobs/{id} polls it. Builds are the
// expensive, minutes-long operation the registry's snapshot swap exists
// to hide from query traffic.

// JobState is a build job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one asynchronous build. Fields other than ID are guarded by the
// owning jobSet's mutex; read them through View or Wait.
type Job struct {
	ID string

	name    string
	dataset string
	method  string

	state JobState
	err   string

	// Build outcome, valid once state == JobDone.
	version    uint64
	k          int
	commBytes  int64
	rounds     int
	wallMillis int64

	done chan struct{}
}

// JobView is the JSON form of a job.
type JobView struct {
	ID      string   `json:"id"`
	Name    string   `json:"name"`
	Dataset string   `json:"dataset"`
	Method  string   `json:"method"`
	State   JobState `json:"state"`
	Error   string   `json:"error,omitempty"`

	Version    uint64 `json:"version,omitempty"`
	K          int    `json:"k,omitempty"`
	CommBytes  int64  `json:"comm_bytes,omitempty"`
	Rounds     int    `json:"rounds,omitempty"`
	WallMillis int64  `json:"wall_millis,omitempty"`
}

type jobSet struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
	// order holds job IDs oldest-first so retention can prune finished
	// jobs once the set exceeds maxJobs (running jobs are never pruned).
	order   []string
	maxJobs int
}

func newJobSet(maxJobs int) *jobSet {
	return &jobSet{jobs: map[string]*Job{}, maxJobs: maxJobs}
}

func (js *jobSet) create(name, dataset, method string) *Job {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%d", js.seq),
		name:    name,
		dataset: dataset,
		method:  method,
		state:   JobRunning,
		done:    make(chan struct{}),
	}
	js.jobs[j.ID] = j
	js.order = append(js.order, j.ID)
	if js.maxJobs > 0 && len(js.jobs) > js.maxJobs {
		js.prune()
	}
	return j
}

// prune drops the oldest finished jobs until the set fits maxJobs.
// Caller holds js.mu.
func (js *jobSet) prune() {
	kept := js.order[:0]
	for _, id := range js.order {
		j := js.jobs[id]
		if len(js.jobs) > js.maxJobs && j != nil && j.state != JobRunning {
			delete(js.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	js.order = kept
}

func (js *jobSet) get(id string) (*Job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	return j, ok
}

func (js *jobSet) view(j *Job) JobView {
	js.mu.Lock()
	defer js.mu.Unlock()
	return JobView{
		ID:         j.ID,
		Name:       j.name,
		Dataset:    j.dataset,
		Method:     j.method,
		State:      j.state,
		Error:      j.err,
		Version:    j.version,
		K:          j.k,
		CommBytes:  j.commBytes,
		Rounds:     j.rounds,
		WallMillis: j.wallMillis,
	}
}

func (js *jobSet) fail(j *Job, err error) {
	js.mu.Lock()
	j.state = JobFailed
	j.err = err.Error()
	js.mu.Unlock()
	close(j.done)
}

func (js *jobSet) finish(j *Job, e *Entry, k int, res *wavelethist.Result) {
	js.mu.Lock()
	j.state = JobDone
	j.version = e.Version
	j.k = k
	if res != nil {
		j.commBytes = res.CommBytes
		j.rounds = res.Rounds
		j.wallMillis = res.WallTime.Milliseconds()
	}
	js.mu.Unlock()
	close(j.done)
}

// Wait blocks until the job leaves JobRunning (test helper; HTTP clients
// poll GET /v1/jobs/{id} instead) or the timeout elapses.
func (j *Job) Wait(timeout time.Duration) bool {
	select {
	case <-j.done:
		return true
	case <-time.After(timeout):
		return false
	}
}
