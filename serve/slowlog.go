package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The slow-query sink: when Config.SlowQueryDir is set, every query over
// the slow threshold appends one JSON line to slow-queries.jsonl in that
// directory — the same capture-to-directory pattern as the build tracer's
// -trace-dir — so slow spells survive process restarts and feed offline
// analysis without scraping process logs. The human-readable log line
// and the wavehist_slow_queries_total counter are unchanged; the sink is
// purely additive and best-effort (a failed write never fails a query).

// slowQueryRecord is one JSONL line in slow-queries.jsonl. Coalesced is
// the number of original client queries the router folded into this
// request (0 for direct traffic, omitted from the JSON).
type slowQueryRecord struct {
	TS        string `json:"ts"` // RFC3339Nano, UTC
	Op        string `json:"op"`
	Name      string `json:"name"`
	Micros    int64  `json:"micros"`
	Batch     int    `json:"batch"`
	Coalesced int    `json:"coalesced,omitempty"`
}

// slowLogSink serializes appends to the JSONL file. The file is opened
// lazily on the first slow query and held open for the server's life.
type slowLogSink struct {
	dir string

	mu     sync.Mutex
	f      *os.File
	failed bool // a sink that can't open its file stays silent
}

func newSlowLogSink(dir string) *slowLogSink {
	return &slowLogSink{dir: dir}
}

func (k *slowLogSink) record(op, name string, batch, coalesced int, d time.Duration) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.f == nil {
		if k.failed {
			return
		}
		if err := os.MkdirAll(k.dir, 0o755); err != nil {
			k.failed = true
			return
		}
		f, err := os.OpenFile(filepath.Join(k.dir, "slow-queries.jsonl"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			k.failed = true
			return
		}
		k.f = f
	}
	rec := slowQueryRecord{
		TS:        time.Now().UTC().Format(time.RFC3339Nano),
		Op:        op,
		Name:      name,
		Micros:    d.Microseconds(),
		Batch:     batch,
		Coalesced: coalesced,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	k.f.Write(append(b, '\n'))
}

func (k *slowLogSink) close() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.f != nil {
		k.f.Close()
		k.f = nil
	}
	k.failed = true // no reopens after shutdown
}
