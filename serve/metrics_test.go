package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wavelethist/internal/obs"
)

// scrape fetches GET /metrics, lints the exposition, and returns the
// parsed families.
func scrape(t *testing.T, base string) map[string]*obs.Family {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	fams, err := obs.Lint(string(body))
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, body)
	}
	return fams
}

// TestMetricsEndpoint drives queries and a distributed build through the
// API, then checks GET /metrics exposes every required family with
// consistent histogram shape (via the exposition linter).
func TestMetricsEndpoint(t *testing.T) {
	s, srv := newDistServer(t, 2)
	if _, err := s.Registry().Publish("hot", buildHist(t, 20000, 1<<10, 20, 7)); err != nil {
		t.Fatal(err)
	}
	getJSON(t, srv.URL+"/v1/hist/hot/point?key=5", http.StatusOK)
	getJSON(t, srv.URL+"/v1/hist/hot/range?lo=0&hi=99", http.StatusOK)
	postJSON(t, srv.URL+"/v1/hist/hot/query", map[string]any{
		"queries": []map[string]any{{"op": "point", "key": 1}, {"op": "range", "lo": 0, "hi": 9}},
	}, http.StatusOK)

	id := postBuild(t, srv.URL, `{"name":"hd","dataset":"z","method":"TwoLevel-S","k":20,"seed":7,"distributed":true}`)
	j, _ := s.jobs.get(id)
	if !j.Wait(30 * time.Second) {
		t.Fatal("build did not finish")
	}

	fams := scrape(t, srv.URL)
	if err := obs.RequireFamilies(fams,
		"wavehist_query_duration_seconds", "wavehist_queries_total",
		"wavehist_builds_total", "wavehist_build_duration_seconds",
		"wavehist_slow_queries_total", "wavehist_registry_version",
		"wavehist_histograms", "wavehist_jobs_running",
		"wavehist_read_only", "wavehist_repl_lag_versions",
		"wavehist_dist_builds_total", "wavehist_dist_map_rpcs_total",
		"wavehist_dist_wire_bytes_total", "wavehist_dist_round_duration_seconds",
		"wavehist_dist_rpc_duration_seconds", "wavehist_dist_alive_workers",
	); err != nil {
		t.Fatalf("missing families: %v", err)
	}

	// The point query must be countable and quantile-derivable: its
	// histogram family has a +Inf bucket >= 1 for op="point".
	var pointInf float64
	for _, sm := range fams["wavehist_query_duration_seconds"].Samples {
		if strings.HasSuffix(sm.Name, "_bucket") && sm.Labels[`op`] == "point" && sm.Labels["le"] == "+Inf" {
			pointInf = sm.Value
		}
	}
	if pointInf < 1 {
		t.Errorf("point query not observed in wavehist_query_duration_seconds (+Inf = %v)", pointInf)
	}
	// The finished distributed build shows up in both build families.
	var done float64
	for _, sm := range fams["wavehist_builds_total"].Samples {
		if sm.Labels["state"] == "done" {
			done = sm.Value
		}
	}
	if done < 1 {
		t.Errorf("wavehist_builds_total{state=done} = %v, want >= 1", done)
	}
}

// TestJobTraceEndpoint: a distributed build's spans are served at
// GET /v1/jobs/{id}/trace, keyed by the coordinator build ID the job view
// reports as dist_job_id.
func TestJobTraceEndpoint(t *testing.T) {
	s, srv := newDistServer(t, 2)
	id := postBuild(t, srv.URL, `{"name":"ht","dataset":"z","method":"H-WTopk","k":20,"seed":3,"distributed":true}`)
	j, _ := s.jobs.get(id)
	if !j.Wait(60 * time.Second) {
		t.Fatal("build did not finish")
	}
	jv := getJob(t, srv.URL, id)
	if jv.State != JobDone {
		t.Fatalf("job state %q (%s)", jv.State, jv.Error)
	}
	if jv.DistJobID == "" {
		t.Fatal("distributed job view has no dist_job_id")
	}

	out := getJSON(t, srv.URL+"/v1/jobs/"+id+"/trace", http.StatusOK)
	tr, ok := out["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace object: %v", out)
	}
	if tr["state"] != "done" || tr["rounds"].(float64) != 3 {
		t.Fatalf("trace header: state=%v rounds=%v", tr["state"], tr["rounds"])
	}
	spans, _ := tr["spans"].([]any)
	if len(spans) == 0 {
		t.Fatal("trace has no spans")
	}
	rounds := map[float64]bool{}
	for _, raw := range spans {
		sp := raw.(map[string]any)
		rounds[sp["round"].(float64)] = true
		if sp["worker"] == "" {
			t.Errorf("span without worker: %v", sp)
		}
		if sp["dur_micros"].(float64) < 0 {
			t.Errorf("negative span duration: %v", sp)
		}
	}
	for r := 1.0; r <= 3; r++ {
		if !rounds[r] {
			t.Errorf("no span recorded for round %v", r)
		}
	}

	// Unknown jobs and simulated builds 404.
	getJSON(t, srv.URL+"/v1/jobs/job-999/trace", http.StatusNotFound)
	simID := postBuild(t, srv.URL, `{"name":"hs","dataset":"z","method":"TwoLevel-S","k":20,"seed":3}`)
	sj, _ := s.jobs.get(simID)
	sj.Wait(30 * time.Second)
	getJSON(t, srv.URL+"/v1/jobs/"+simID+"/trace", http.StatusNotFound)
}

// TestSlowQueryLog: queries over the threshold emit one structured log
// line and bump the counter; with the feature off nothing is logged.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	s, srv := newTestServer(t, Config{
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryLog:       log.New(&buf, "", 0),
	})
	if _, err := s.Registry().Publish("x", buildHist(t, 5000, 1<<10, 20, 1)); err != nil {
		t.Fatal(err)
	}
	getJSON(t, srv.URL+"/v1/hist/x/point?key=3", http.StatusOK)
	logged := buf.String()
	if !strings.Contains(logged, "slow-query op=point name=x") || !strings.Contains(logged, "batch=1") {
		t.Fatalf("slow-query log line missing or malformed: %q", logged)
	}
	if got := s.slowQueries.Value(); got < 1 {
		t.Fatalf("slow query counter = %d, want >= 1", got)
	}

	// Threshold 0 disables the log entirely.
	var quiet bytes.Buffer
	s2, srv2 := newTestServer(t, Config{SlowQueryLog: log.New(&quiet, "", 0)})
	if _, err := s2.Registry().Publish("x", buildHist(t, 5000, 1<<10, 20, 1)); err != nil {
		t.Fatal(err)
	}
	getJSON(t, srv2.URL+"/v1/hist/x/point?key=3", http.StatusOK)
	if quiet.Len() != 0 {
		t.Fatalf("slow-query log written with threshold 0: %q", quiet.String())
	}
}

// TestSlowQuerySinkJSONL: with SlowQueryDir set, every slow query lands
// as one structured JSON line in slow-queries.jsonl — parseable records
// with op/name/micros/batch — while the log line and counter keep their
// existing behavior; without the dir no file appears.
func TestSlowQuerySinkJSONL(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	s, srv := newTestServer(t, Config{
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryLog:       log.New(&buf, "", 0),
		SlowQueryDir:       dir,
	})
	if _, err := s.Registry().Publish("x", buildHist(t, 5000, 1<<10, 20, 1)); err != nil {
		t.Fatal(err)
	}
	getJSON(t, srv.URL+"/v1/hist/x/point?key=3", http.StatusOK)
	getJSON(t, srv.URL+"/v1/hist/x/range?lo=0&hi=100", http.StatusOK)
	postJSON(t, srv.URL+"/v1/hist/x/query", json.RawMessage(`{"queries":[{"op":"point","key":1},{"op":"point","key":2}]}`), http.StatusOK)

	b, err := os.ReadFile(filepath.Join(dir, "slow-queries.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 3 {
		t.Fatalf("sink holds %d records, want 3:\n%s", len(lines), b)
	}
	wantOps := []string{"point", "range", "batch"}
	for i, line := range lines {
		var rec struct {
			TS     string `json:"ts"`
			Op     string `json:"op"`
			Name   string `json:"name"`
			Micros int64  `json:"micros"`
			Batch  int    `json:"batch"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d is not JSON: %q: %v", i, line, err)
		}
		if rec.Op != wantOps[i] || rec.Name != "x" || rec.Micros < 0 {
			t.Fatalf("record %d = %+v, want op %q name x", i, rec, wantOps[i])
		}
		if ts, err := time.Parse(time.RFC3339Nano, rec.TS); err != nil || ts.IsZero() {
			t.Fatalf("record %d timestamp %q: %v", i, rec.TS, err)
		}
		if rec.Op == "batch" && rec.Batch != 2 {
			t.Fatalf("batch record = %+v, want batch=2", rec)
		}
	}
	if !strings.Contains(buf.String(), "slow-query op=point") {
		t.Fatal("human-readable log line suppressed by the sink")
	}
	if got := s.slowQueries.Value(); got < 3 {
		t.Fatalf("slow query counter = %d, want >= 3", got)
	}

	// No dir configured: no sink file, even with slow queries firing.
	s2, srv2 := newTestServer(t, Config{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       log.New(io.Discard, "", 0),
	})
	if _, err := s2.Registry().Publish("x", buildHist(t, 5000, 1<<10, 20, 1)); err != nil {
		t.Fatal(err)
	}
	getJSON(t, srv2.URL+"/v1/hist/x/point?key=3", http.StatusOK)
	if s2.slowLog != nil {
		t.Fatal("sink constructed without SlowQueryDir")
	}
}

// TestStatsQuantiles: /v1/stats per-op stats carry p50/p99 once queries
// have been timed, without breaking the old mean/count fields.
func TestStatsQuantiles(t *testing.T) {
	s, srv := newTestServer(t, Config{})
	if _, err := s.Registry().Publish("q", buildHist(t, 5000, 1<<10, 20, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		getJSON(t, srv.URL+"/v1/hist/q/point?key=3", http.StatusOK)
	}
	out := getJSON(t, srv.URL+"/v1/stats", http.StatusOK)
	hists, ok := out["histograms"].(map[string]any)
	if !ok || hists["q"] == nil {
		t.Fatalf("stats histograms: %v", out)
	}
	st := hists["q"].(map[string]any)["stats"].(map[string]any)["point"].(map[string]any)
	if st["count"].(float64) != 10 {
		t.Fatalf("point count: %v", st)
	}
	p50, ok50 := st["p50_micros"].(float64)
	p99, ok99 := st["p99_micros"].(float64)
	if !ok50 || !ok99 || p50 < 0 || p99 < p50 {
		t.Fatalf("quantiles missing or inverted: %v", st)
	}
	if mean := st["mean_micros"].(float64); mean <= 0 {
		t.Fatalf("mean_micros: %v", mean)
	}
}
