package serve

import (
	"sync"
	"testing"
	"time"
)

// TestOpStatsViewNoTornReads hammers one OpStats with fixed-duration
// adds while a reader snapshots it. The old implementation loaded count
// and nanos as two independent atomics, so a reader could pair a fresh
// count with a stale nanos sum and report a mean below the true per-op
// duration. The histogram-backed version orders writes (nanos before
// count) against reads (count before nanos), so every snapshot's mean
// must be >= the uniform per-op duration. Run with -race.
func TestOpStatsViewNoTornReads(t *testing.T) {
	const (
		workers = 8
		perOp   = time.Millisecond
		iters   = 3000
	)
	var o OpStats
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				o.Add(1, perOp)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	wantMicros := float64(perOp) / 1e3
	for {
		v := o.View()
		if v.Count > 0 && v.MeanMicros < wantMicros {
			t.Fatalf("torn read: count=%d mean=%.3fµs < %.3fµs", v.Count, v.MeanMicros, wantMicros)
		}
		select {
		case <-done:
			v := o.View()
			if v.Count != workers*iters {
				t.Fatalf("count = %d, want %d", v.Count, workers*iters)
			}
			if v.MeanMicros != wantMicros {
				t.Fatalf("final mean = %v, want %v", v.MeanMicros, wantMicros)
			}
			if v.P50Micros <= 0 || v.P99Micros < v.P50Micros {
				t.Fatalf("quantiles: p50=%v p99=%v", v.P50Micros, v.P99Micros)
			}
			return
		default:
		}
	}
}

// TestOpStatsUntimedAddsSkipQuantiles: Add with d=0 (per-query tallies
// inside batches) counts ops but must not pollute latency quantiles.
func TestOpStatsUntimedAddsSkipQuantiles(t *testing.T) {
	var o OpStats
	o.Add(100, 0)
	v := o.View()
	if v.Count != 100 {
		t.Fatalf("count = %d", v.Count)
	}
	if v.MeanMicros != 0 || v.P50Micros != 0 || v.P99Micros != 0 {
		t.Fatalf("untimed adds leaked into latency stats: %+v", v)
	}
	if hv := o.HistView(); hv.Count != 0 {
		t.Fatalf("histogram saw %d untimed ops", hv.Count)
	}
	o.Add(1, 2*time.Millisecond)
	v = o.View()
	// Mean still averages over all counted ops (2ms / 101 ops).
	want := 2000.0 / 101
	if v.MeanMicros < want-0.01 || v.MeanMicros > want+0.01 {
		t.Fatalf("mean = %v, want ~%v", v.MeanMicros, want)
	}
	if v.P50Micros <= 0 {
		t.Fatalf("p50 = %v after a timed op", v.P50Micros)
	}
}

func TestOpStatsStart(t *testing.T) {
	var o OpStats
	stop := o.Start()
	time.Sleep(2 * time.Millisecond)
	stop()
	v := o.View()
	if v.Count != 1 {
		t.Fatalf("count = %d", v.Count)
	}
	if v.MeanMicros < 1000 {
		t.Fatalf("mean = %vµs, want >= 1000", v.MeanMicros)
	}
	if v.P99Micros < 1000 {
		t.Fatalf("p99 = %vµs, want >= 1000", v.P99Micros)
	}
}
