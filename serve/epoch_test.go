package serve

import (
	"bytes"
	"io"
	"net/http"
	"testing"
	"time"

	"wavelethist/dist"
)

// pullEpoch is pullBinary with an explicit request epoch — the fencing
// field a post-PR-10 replica always sends.
func pullEpoch(t *testing.T, base string, since, epoch uint64) *dist.ReplPullResponse {
	t.Helper()
	frame := dist.EncodeReplPullRequest(&dist.ReplPullRequest{Since: since, Epoch: epoch})
	resp, err := http.Post(base+"/v1/repl/pull", dist.ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pull: HTTP %d: %s", resp.StatusCode, body)
	}
	out, err := dist.DecodeReplPullResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEpochPersistsAcrossRestarts: with a SnapshotDir the epoch is a
// true per-data-directory counter — every cold start advances it, and a
// fenced promotion's token lands in the file so a later restart
// continues past it.
func TestEpochPersistsAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	s1, _ := newTestServer(t, Config{SnapshotDir: dir})
	if s1.Epoch() != 1 {
		t.Fatalf("first cold start epoch %d, want 1", s1.Epoch())
	}
	s2, _ := newTestServer(t, Config{SnapshotDir: dir})
	if s2.Epoch() != 2 {
		t.Fatalf("second cold start epoch %d, want 2", s2.Epoch())
	}

	s3, _ := newTestServer(t, Config{ReadOnly: true, SnapshotDir: dir})
	if s3.Epoch() != 3 {
		t.Fatalf("third cold start epoch %d, want 3", s3.Epoch())
	}
	ep, err := s3.PromoteEpoch(100)
	if err != nil || ep != 100 {
		t.Fatalf("fenced promotion: epoch %d, err %v (want 100, nil)", ep, err)
	}
	s4, _ := newTestServer(t, Config{SnapshotDir: dir})
	if s4.Epoch() != 101 {
		t.Fatalf("restart after fenced promotion: epoch %d, want 101", s4.Epoch())
	}
}

// TestPromoteEpochFencing: a stale token (<= current epoch) cannot
// promote, a fresh one can, and a writable server refuses further
// promotions — all over the HTTP handler the router actually posts.
func TestPromoteEpochFencing(t *testing.T) {
	s, ts := newTestServer(t, Config{ReadOnly: true})
	e := s.Epoch()

	postJSON(t, ts.URL+"/v1/promote", map[string]any{"epoch": e}, http.StatusConflict)
	if !s.ReadOnly() {
		t.Fatal("stale token promoted the replica")
	}

	out := postJSON(t, ts.URL+"/v1/promote", map[string]any{"epoch": e + 7}, http.StatusOK)
	if out["promoted"] != true || s.ReadOnly() || s.Epoch() != e+7 {
		t.Fatalf("fenced promotion: %v, read_only=%v, epoch=%d (want %d)", out, s.ReadOnly(), s.Epoch(), e+7)
	}

	postJSON(t, ts.URL+"/v1/promote", map[string]any{"epoch": e + 100}, http.StatusConflict)
	if s.Epoch() != e+7 {
		t.Fatalf("re-promotion moved the epoch to %d", s.Epoch())
	}
}

// TestDemoteFencing: the demote token must STRICTLY exceed the demotee's
// epoch — the legitimate primary (whose epoch IS the fence) is immune to
// a replay of its own token, while a superseded lineage always yields.
// Token 0 is the manual operator path and demotes unconditionally.
func TestDemoteFencing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	e := s.Epoch()

	// Replaying the primary's own epoch as a token is refused.
	postJSON(t, ts.URL+"/v1/demote", map[string]any{"epoch": e}, http.StatusConflict)
	if s.ReadOnly() {
		t.Fatal("own-token replay demoted the primary")
	}

	// A strictly newer lineage's token fences it read-only.
	out := postJSON(t, ts.URL+"/v1/demote", map[string]any{"epoch": e + 1}, http.StatusOK)
	if out["demoted"] != true || !s.ReadOnly() {
		t.Fatalf("fenced demotion: %v, read_only=%v", out, s.ReadOnly())
	}

	// Demoting an already-read-only server is an idempotent no-op.
	out = postJSON(t, ts.URL+"/v1/demote", map[string]any{"epoch": e + 2}, http.StatusOK)
	if out["demoted"] != false {
		t.Fatalf("re-demotion: %v, want demoted=false", out)
	}

	// Manual path: unfenced promote, then unconditional demote.
	postJSON(t, ts.URL+"/v1/promote", map[string]any{}, http.StatusOK)
	if s.ReadOnly() {
		t.Fatal("manual promotion did not take")
	}
	postJSON(t, ts.URL+"/v1/demote", map[string]any{}, http.StatusOK)
	if !s.ReadOnly() {
		t.Fatal("manual demotion did not take")
	}
}

// TestPullEpochMismatchForcesFullSnapshot: a cursor minted under a
// different epoch is meaningless (the primary's version counter may
// have restarted), so the primary answers from zero with the complete
// state. Matching and legacy (epoch-less) pulls keep the incremental
// path.
func TestPullEpochMismatchForcesFullSnapshot(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if _, err := s.Registry().Publish("a", buildHist(t, 10000, 1<<10, 20, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Publish("b", buildHist(t, 10000, 1<<10, 20, 2)); err != nil {
		t.Fatal(err)
	}
	cur, e := s.Registry().Version(), s.Epoch()

	match := pullEpoch(t, ts.URL, cur, e)
	if match.Since != cur || len(match.Entries) != 0 || match.Epoch != e {
		t.Fatalf("matching-epoch pull: since=%d entries=%d epoch=%d", match.Since, len(match.Entries), match.Epoch)
	}

	mismatch := pullEpoch(t, ts.URL, cur, e+999)
	if mismatch.Since != 0 || len(mismatch.Entries) != 2 {
		t.Fatalf("mismatched-epoch pull: since=%d entries=%d, want full snapshot", mismatch.Since, len(mismatch.Entries))
	}

	legacy := pullEpoch(t, ts.URL, cur, 0)
	if legacy.Since != cur || len(legacy.Entries) != 0 {
		t.Fatalf("legacy pull: since=%d entries=%d, want incremental", legacy.Since, len(legacy.Entries))
	}
}

// TestHealthzEpochFields: /healthz carries everything the router's
// elector needs in one probe — epoch and role always, replication
// progress (applied cursor + the epoch it was minted under) once the
// server has a replication status.
func TestHealthzEpochFields(t *testing.T) {
	p, pts := newTestServer(t, Config{})
	out := getJSON(t, pts.URL+"/healthz", http.StatusOK)
	if out["ok"] != true || out["read_only"] != false {
		t.Fatalf("primary healthz: %v", out)
	}
	// Random in-memory epochs exceed float64's integer range; compare in
	// float space, which is what a JSON client sees anyway.
	if out["epoch"].(float64) != float64(p.Epoch()) {
		t.Fatalf("primary healthz epoch %v, want %d", out["epoch"], p.Epoch())
	}
	if _, ok := out["applied"]; ok {
		t.Fatalf("primary healthz carries replication fields: %v", out)
	}

	r, rts := newTestServer(t, Config{ReadOnly: true})
	r.SetReplStatus(ReplStatus{Primary: "http://p", Version: 42, Epoch: 7, SyncedAt: time.Now()})
	out = getJSON(t, rts.URL+"/healthz", http.StatusOK)
	if out["read_only"] != true || out["applied"].(float64) != 42 || out["repl_epoch"].(float64) != 7 {
		t.Fatalf("replica healthz: %v", out)
	}
}

// TestNeverSyncedStalenessGauge: a replica whose primary was dead from
// the very first pull has a zero SyncedAt forever — the staleness gauge
// must fall back to the first attempt so the sync-stalled alert can
// fire exactly when replication is broken, and the epoch families must
// exist alongside it.
func TestNeverSyncedStalenessGauge(t *testing.T) {
	s, ts := newTestServer(t, Config{ReadOnly: true})
	s.SetReplStatus(ReplStatus{
		Primary:      "http://dead",
		Error:        "connection refused",
		LastAttempt:  time.Now(),
		FirstAttempt: time.Now().Add(-30 * time.Second),
		LagVersions:  5,
	})
	fams := scrape(t, ts.URL)
	gauge := func(name string) float64 {
		t.Helper()
		fam := fams[name]
		if fam == nil || len(fam.Samples) == 0 {
			t.Fatalf("family %s missing", name)
		}
		return fam.Samples[0].Value
	}
	if v := gauge("wavehist_repl_seconds_since_sync"); v < 29 {
		t.Fatalf("never-synced staleness gauge %v, want >= 29s (first-attempt fallback)", v)
	}
	if v := gauge("wavehist_repl_lag_versions"); v != 5 {
		t.Fatalf("lag gauge %v, want 5", v)
	}
	if v := gauge("wavehist_repl_epoch"); v != 0 {
		t.Fatalf("never-synced repl epoch %v, want 0", v)
	}
	if fams["wavehist_epoch"] == nil || fams["wavehist_repl_epoch_resets_total"] == nil {
		t.Fatal("epoch metric families missing from a replica scrape")
	}
}
