package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestEstimateEncodingMatchesJSON: the hand-rolled single-query encoder
// produces output encoding/json parses back to exactly the same values,
// across tricky floats.
func TestEstimateEncodingMatchesJSON(t *testing.T) {
	for _, est := range []float64{0, 1, -1, 3.5, 1234567.25, 1e-9, -2.5e-9, 4.9e21, 0.1, math.MaxFloat64} {
		b := AppendEstimate(nil, "my.hist-1", 42, est,
			EstimateField{"lo", -5}, EstimateField{"hi", 1 << 40})
		var out struct {
			Name     string  `json:"name"`
			Version  uint64  `json:"version"`
			Lo       int64   `json:"lo"`
			Hi       int64   `json:"hi"`
			Estimate float64 `json:"estimate"`
		}
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("est %g: invalid JSON %q: %v", est, b, err)
		}
		if out.Name != "my.hist-1" || out.Version != 42 || out.Lo != -5 || out.Hi != 1<<40 || out.Estimate != est {
			t.Fatalf("est %g: round-tripped to %+v (%s)", est, out, b)
		}
		// And byte-compatibility of the float with encoding/json itself.
		std, _ := json.Marshal(est)
		if got := string(appendJSONFloat(nil, est)); got != string(std) {
			t.Errorf("float %g: encoded %q, encoding/json says %q", est, got, std)
		}
	}
	// Single-field form (1D point).
	b := AppendEstimate(nil, "h", 1, 2.5, EstimateField{"key", 7})
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil || len(m) != 4 || m["key"].(float64) != 7 {
		t.Fatalf("point form: %s (%v)", b, err)
	}
}

// TestPointRangeEndpointsStillServe: the rewritten handlers answer with
// the same fields the JSON-encoder versions did.
func TestPointRangeEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	h := buildHist(t, 20000, 1<<10, 30, 8)
	e, err := s.Registry().Publish("p", h)
	if err != nil {
		t.Fatal(err)
	}
	pt := getJSON(t, ts.URL+"/v1/hist/p/point?key=3", http.StatusOK)
	if pt["name"] != "p" || uint64(pt["version"].(float64)) != e.Version || pt["key"].(float64) != 3 {
		t.Fatalf("point response: %v", pt)
	}
	if pt["estimate"].(float64) != h.PointEstimate(3) {
		t.Fatalf("point estimate %v, want %v", pt["estimate"], h.PointEstimate(3))
	}
	rg := getJSON(t, ts.URL+"/v1/hist/p/range?lo=10&hi=200", http.StatusOK)
	if rg["lo"].(float64) != 10 || rg["hi"].(float64) != 200 || rg["estimate"].(float64) != h.RangeCount(10, 200) {
		t.Fatalf("range response: %v", rg)
	}
	// Error paths unchanged.
	getJSON(t, ts.URL+"/v1/hist/p/point?key=notanint", http.StatusBadRequest)
	getJSON(t, ts.URL+"/v1/hist/p/range?lo=1", http.StatusBadRequest)
}

// TestAppendEstimateAllocFree: steady-state single-query encoding does
// not allocate once the pooled buffer has warmed up.
func TestAppendEstimateAllocFree(t *testing.T) {
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendEstimate(buf[:0], "some-histogram", 123456, 42.75,
			EstimateField{"lo", 17}, EstimateField{"hi", 92233720368})
	})
	if allocs != 0 {
		t.Fatalf("AppendEstimate allocates %v times per call", allocs)
	}
}

// BenchmarkPointEndpoint measures the full handler path of the alloc-free
// single-query encoder.
func BenchmarkPointEndpoint(b *testing.B) {
	s, err := NewServer(Config{})
	if err != nil {
		b.Fatal(err)
	}
	h := buildHist(b, 100000, 1<<12, 64, 9)
	if _, err := s.Registry().Publish("bench", h); err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/hist/bench/point?key=17", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}
