package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"time"

	"wavelethist/dist"
)

// Replication surface. A primary wavehistd exposes POST /v1/repl/pull:
// replicas send the highest registry version they have applied and get
// back every entry published after it (full histogram blobs — summaries
// are kilobytes, so "log shipping" degenerates to shipping the changed
// snapshots) plus the complete live name set for drop detection. The
// endpoint negotiates by Content-Type exactly like the worker wire:
// binary WDF1 frames in → frames out, JSON in → JSON out.
//
// A server started read-only (Config.ReadOnly, the -replica-of mode)
// rejects every mutating endpoint with 403 until POST /v1/promote flips
// it writable — the failover path when the primary dies.

// ReplStatus is a replica's view of its sync progress, reported under
// "replication" in GET /v1/stats. The ha.Replica sync loop installs it
// after every pull.
type ReplStatus struct {
	// Primary is the upstream base URL this server replicates from.
	Primary string `json:"primary"`
	// Version is the primary registry version this replica has fully
	// applied — the replication cursor.
	Version uint64 `json:"version"`
	// Epoch is the primary registry epoch the cursor was minted under
	// (0 = never synced) — the wavehist_repl_epoch gauge.
	Epoch uint64 `json:"epoch,omitempty"`
	// EpochResets counts cursor resets forced by a primary epoch change
	// (restarted or promoted primary) — wavehist_repl_epoch_resets_total.
	EpochResets uint64 `json:"epoch_resets,omitempty"`
	// SyncedAt is when the last successful pull completed.
	SyncedAt time.Time `json:"synced_at"`
	// LastAttempt is when the last pull was attempted, success or not.
	LastAttempt time.Time `json:"last_attempt,omitempty"`
	// FirstAttempt is when the first pull was attempted (set once). It
	// keeps the staleness gauge live for a replica that has NEVER synced
	// (SyncedAt zero forever), where the sync-stalled alert would
	// otherwise stay quiet exactly while replication is broken.
	FirstAttempt time.Time `json:"first_attempt,omitempty"`
	// LagVersions is how many registry versions the primary was ahead of
	// this replica's cursor at the last pull that learned the primary's
	// version (0 when caught up) — the wavehist_repl_lag_versions gauge.
	// Updated on failed pulls too, from the highest primary version the
	// replica has ever observed.
	LagVersions uint64 `json:"lag_versions"`
	// Error is the last sync failure ("" while healthy). A stale
	// SyncedAt plus a non-empty Error is the "primary is down" signal.
	Error string `json:"error,omitempty"`
}

// ReadOnly reports whether the server is in replica mode (mutations 403).
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// Promote flips a read-only replica writable, reporting whether a
// promotion happened (false = already writable). Promotion is one atomic
// bit: the replica's registry already holds the replicated histograms, so
// there is no catch-up phase — reads never pause and writes are accepted
// from the next request on. The epoch is bumped so the new write lineage
// is distinguishable from the dead primary's; for fenced promotion with
// an explicit token see PromoteEpoch (epoch.go).
func (s *Server) Promote() bool {
	_, err := s.PromoteEpoch(0)
	return err == nil
}

// SetReplStatus installs the replica's sync progress for /v1/stats.
func (s *Server) SetReplStatus(st ReplStatus) { s.repl.Store(&st) }

// ReplStatus returns the last installed sync status (zero value if this
// server never synced — i.e. it is a primary).
func (s *Server) ReplStatus() ReplStatus {
	if st := s.repl.Load(); st != nil {
		return *st
	}
	return ReplStatus{}
}

// writable guards mutating handlers: a read replica refuses writes so the
// replicated registry stays a pure function of the primary's.
func (s *Server) writable(w http.ResponseWriter) bool {
	if s.readOnly.Load() {
		writeErr(w, http.StatusForbidden,
			"server is a read replica; send writes to the primary or POST /v1/promote")
		return false
	}
	return true
}

// pullResponse assembles the catch-up payload for a replica at version
// since. One registry snapshot resolution; entries come back in install-
// version order so a replica that applies them sequentially is always at
// a prefix-consistent version. A request epoch that does not match this
// server's forces a full snapshot (since 0): the replica's cursor was
// minted under a different write lineage — most likely this primary
// restarted and its version counter restarted with it — so positions are
// not comparable and trusting the cursor would strand the replica on
// stale data.
func (s *Server) pullResponse(since, reqEpoch uint64) *dist.ReplPullResponse {
	epoch := s.epoch.Load()
	if reqEpoch != 0 && reqEpoch != epoch {
		since = 0
	}
	snap := s.reg.Snapshot()
	resp := &dist.ReplPullResponse{Version: snap.Version(), Epoch: epoch, Since: since, Names: snap.Names()}
	for _, e := range snap.EntriesSince(since) {
		var (
			blob []byte
			err  error
			kind byte
		)
		if e.Is2D() {
			blob, err = e.H2D.MarshalBinary()
			kind = dist.ReplKind2D
		} else {
			blob, err = e.H.MarshalBinary()
			kind = dist.ReplKind1D
		}
		if err != nil {
			// A published histogram always marshals (it was validated on
			// the way in); skip defensively rather than torn-replicate.
			continue
		}
		resp.Entries = append(resp.Entries, dist.ReplEntry{
			Name: e.Name, Kind: kind, Version: e.Version, Blob: blob,
		})
	}
	return resp
}

func (s *Server) handleReplPull(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == dist.ContentTypeBinary {
		frame, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		req, err := dist.DecodeReplPullRequest(frame)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad pull request: %v", err)
			return
		}
		w.Header().Set("Content-Type", dist.ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		w.Write(dist.EncodeReplPullResponse(s.pullResponse(req.Since, req.Epoch)))
		return
	}
	var req dist.ReplPullRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad pull request: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.pullResponse(req.Since, req.Epoch))
}

// fenceRequest is the optional JSON body of /v1/promote and /v1/demote:
// an epoch fencing token. An empty body (epoch 0) is the manual
// operator path — unfenced promote/demote.
type fenceRequest struct {
	Epoch uint64 `json:"epoch"`
}

func decodeFence(r *http.Request) (fenceRequest, error) {
	var req fenceRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		return req, err
	}
	if len(body) == 0 {
		return req, nil
	}
	return req, json.Unmarshal(body, &req)
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	req, err := decodeFence(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad promote request: %v", err)
		return
	}
	epoch, err := s.PromoteEpoch(req.Epoch)
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"promoted": true,
		"version":  s.reg.Version(),
		"epoch":    epoch,
	})
}

// handleDemote fences a writable server read-only. The router posts it
// at a resurrected old primary (with the fencing token of the lineage
// that superseded it) so a node that died as a primary cannot come back
// and accept writes — the split-brain guard.
func (s *Server) handleDemote(w http.ResponseWriter, r *http.Request) {
	req, err := decodeFence(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad demote request: %v", err)
		return
	}
	demoted, err := s.Demote(req.Epoch)
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"demoted":   demoted,
		"read_only": true,
		"epoch":     s.epoch.Load(),
	})
}
