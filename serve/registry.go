// Package serve turns built wavelet histograms into a queryable service:
// a versioned, concurrent registry of named histograms plus an HTTP JSON
// API (see Server) — the serving layer a query optimizer or analytics
// frontend hits for point-frequency and range-selectivity estimates.
//
// The registry is built for read-heavy traffic: lookups are lock-free
// (one atomic pointer load), so a background rebuild or a maintainer
// republish never blocks query goroutines. Writers serialize among
// themselves and install a new immutable snapshot with a single pointer
// swap; readers that already hold the old snapshot keep a consistent
// view until their query completes.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"wavelethist"
)

// Snapshot file extensions, matching the two wire formats of the
// wavelethist serialize layer.
const (
	ext1D = ".whst"
	ext2D = ".wh2d"
)

// Entry is one published histogram: an immutable (name, version, summary)
// triple plus its accumulated serving stats. Exactly one of H and H2D is
// non-nil. Entries are never mutated after publication — a republish
// installs a fresh Entry carrying the same *Stats.
type Entry struct {
	Name    string
	Version uint64 // registry version at which this entry was installed
	H       *wavelethist.Histogram
	H2D     *wavelethist.Histogram2D
	Stats   *Stats
}

// Is2D reports whether the entry holds a 2D histogram.
func (e *Entry) Is2D() bool { return e.H2D != nil }

// K returns the entry's retained-coefficient count.
func (e *Entry) K() int {
	if e.Is2D() {
		return e.H2D.K()
	}
	return e.H.K()
}

// Domain returns the key-domain size (grid side for 2D).
func (e *Entry) Domain() int64 {
	if e.Is2D() {
		return e.H2D.Side()
	}
	return e.H.Domain()
}

// Point returns the estimated frequency of key x, recording stats.
func (e *Entry) Point(x int64) (float64, error) {
	defer e.Stats.Point.Start()()
	return e.batchPoint(x)
}

// Point2D returns the estimated frequency of grid cell (x, y),
// recording stats.
func (e *Entry) Point2D(x, y int64) (float64, error) {
	defer e.Stats.Point.Start()()
	return e.batchPoint2D(x, y)
}

// Range returns the estimated number of records with keys in [lo, hi]
// (inclusive), recording stats. Bounds follow the library-wide clamp
// contract (see Histogram.RangeCount): lo and hi are clamped to the
// domain, and a range with an empty domain intersection — including
// lo > hi — estimates 0 rather than erroring.
func (e *Entry) Range(lo, hi int64) (float64, error) {
	defer e.Stats.Range.Start()()
	return e.batchRange(lo, hi)
}

// Range2D returns the estimated number of records in the rectangle
// [xlo, xhi] × [ylo, yhi], recording stats. Both axes follow the same
// clamp contract as Range: bounds clamp to the grid, and an empty
// intersection on either axis estimates 0 rather than erroring.
func (e *Entry) Range2D(xlo, xhi, ylo, yhi int64) (float64, error) {
	defer e.Stats.Range.Start()()
	return e.batchRange2D(xlo, xhi, ylo, yhi)
}

// BatchQuery is one query in a batch request (POST /v1/hist/{name}/query).
// Point queries address 1D histograms by Key and 2D ones by (X, Y); range
// queries address 1D histograms by [Lo, Hi] and 2D ones by the rectangle
// [XLo, XHi] × [YLo, YHi].
type BatchQuery struct {
	Op  string `json:"op"` // "point" | "range"
	Key int64  `json:"key,omitempty"`
	X   int64  `json:"x,omitempty"`
	Y   int64  `json:"y,omitempty"`
	Lo  int64  `json:"lo,omitempty"`
	Hi  int64  `json:"hi,omitempty"`
	XLo int64  `json:"xlo,omitempty"`
	XHi int64  `json:"xhi,omitempty"`
	YLo int64  `json:"ylo,omitempty"`
	YHi int64  `json:"yhi,omitempty"`
}

// BatchResult is one per-query outcome.
type BatchResult struct {
	Estimate float64 `json:"estimate"`
	Error    string  `json:"error,omitempty"`
}

// batchTuning selects a batch execution strategy. The zero-config
// defaultTuning matches the historical behaviour: vectorize at
// vecBatchMin queries and size the parallel pool automatically.
type batchTuning struct {
	// vecMin is the batch size at which the vectorized shared-walk
	// executor takes over from the scalar loop; negative disables
	// vectorization entirely (scalar-only, for baselining).
	vecMin int
	// workers bounds the parallel executor's pool once a gathered query
	// class reaches parBatchMin: 0 = automatic (GOMAXPROCS-capped),
	// 1 = always serial vectorized.
	workers int
}

var defaultTuning = batchTuning{vecMin: vecBatchMin}

// Batch answers queries[i] into results[i] (the slices must have equal
// length), recording one Batch stat for the whole call. Every sub-query
// resolves against this entry's immutable histogram snapshot, off its
// shared error-tree index. Batches of vecBatchMin or more dispatch to
// the vectorized shared-walk executor (batchvec.go) — one sorted sweep
// per tree level instead of one walk per query, bit-identical results —
// and smaller ones run the scalar loop; gathered classes of parBatchMin
// or more additionally fan across the parallel segment executors.
// Either way the steady state (well-formed queries) performs no
// allocations, so callers that reuse their slices — the HTTP batch
// handler's pooled buffers, benchmark loops — serve batches
// allocation-free.
func (e *Entry) Batch(queries []BatchQuery, results []BatchResult) {
	e.batch(queries, results, defaultTuning)
}

func (e *Entry) batch(queries []BatchQuery, results []BatchResult, tn batchTuning) {
	if len(results) != len(queries) {
		panic("serve: Batch slice length mismatch")
	}
	t0 := time.Now()
	if tn.vecMin >= 0 && len(queries) >= tn.vecMin {
		e.batchVectorized(queries, results, tn.workers)
	} else {
		e.batchScalar(queries, results)
	}
	e.Stats.Batch.Add(1, time.Since(t0))
	e.Stats.BatchQueries.Add(int64(len(queries)), 0)
}

// batchScalar answers each query with an independent tree walk — the
// reference loop the vectorized dispatch must match bit for bit.
func (e *Entry) batchScalar(queries []BatchQuery, results []BatchResult) {
	for i := range queries {
		q := &queries[i]
		var (
			est float64
			err error
		)
		switch q.Op {
		case "point":
			if e.Is2D() {
				est, err = e.batchPoint2D(q.X, q.Y)
			} else {
				est, err = e.batchPoint(q.Key)
			}
		case "range":
			if e.Is2D() {
				est, err = e.batchRange2D(q.XLo, q.XHi, q.YLo, q.YHi)
			} else {
				est, err = e.batchRange(q.Lo, q.Hi)
			}
		default:
			err = fmt.Errorf("unknown op %q (want point or range)", q.Op)
		}
		if err != nil {
			results[i] = BatchResult{Error: err.Error()}
		} else {
			results[i] = BatchResult{Estimate: est}
		}
	}
}

// batchPoint / batchPoint2D / batchRange are the stats-free estimate
// paths: batch requests record one Batch stat for the whole request
// instead of per-query counters.

func (e *Entry) batchPoint(x int64) (float64, error) {
	if e.Is2D() {
		return 0, fmt.Errorf("serve: %q is 2D; query with x and y", e.Name)
	}
	if x < 0 || x >= e.H.Domain() {
		return 0, fmt.Errorf("serve: key %d outside domain [0, %d)", x, e.H.Domain())
	}
	return e.H.PointEstimate(x), nil
}

func (e *Entry) batchPoint2D(x, y int64) (float64, error) {
	if !e.Is2D() {
		return 0, fmt.Errorf("serve: %q is 1D; query with key", e.Name)
	}
	s := e.H2D.Side()
	if x < 0 || x >= s || y < 0 || y >= s {
		return 0, fmt.Errorf("serve: cell (%d, %d) outside grid [0, %d)²", x, y, s)
	}
	return e.H2D.PointEstimate(x, y), nil
}

func (e *Entry) batchRange(lo, hi int64) (float64, error) {
	if e.Is2D() {
		return 0, fmt.Errorf("serve: %q is 2D; range queries need xlo/xhi/ylo/yhi", e.Name)
	}
	// One contract at every layer (Representation.RangeSum, Histogram.
	// RangeCount, this handler): bounds are clamped to the domain and an
	// empty intersection estimates 0 — never an error.
	return e.H.RangeCount(lo, hi), nil
}

func (e *Entry) batchRange2D(xlo, xhi, ylo, yhi int64) (float64, error) {
	if !e.Is2D() {
		return 0, fmt.Errorf("serve: %q is 1D; range queries need lo and hi", e.Name)
	}
	// Same clamp contract as batchRange, applied per axis: an empty
	// intersection on either axis estimates 0 — never an error.
	return e.H2D.RangeCount(xlo, xhi, ylo, yhi), nil
}

// Snapshot is an immutable point-in-time view of the registry. Queries
// resolved against one snapshot are mutually consistent even while
// writers publish new versions.
type Snapshot struct {
	version uint64
	entries map[string]*Entry
}

// Version returns the registry version this snapshot reflects. The
// version advances by one on every publish or drop.
func (s *Snapshot) Version() uint64 { return s.version }

// Lookup returns the named entry.
func (s *Snapshot) Lookup(name string) (*Entry, bool) {
	e, ok := s.entries[name]
	return e, ok
}

// Names returns the published histogram names, sorted.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.entries))
	for n := range s.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EntriesSince returns the entries installed after registry version since,
// ordered by install version — the payload of a replication pull. Dropped
// names never appear here; replicas detect drops by diffing the snapshot's
// full name set against their own.
func (s *Snapshot) EntriesSince(since uint64) []*Entry {
	var out []*Entry
	for _, e := range s.entries {
		if e.Version > since {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

// Registry is a versioned, concurrent histogram registry. Reads are
// lock-free; writes (Publish, Drop) serialize on an internal mutex,
// copy the entry map, and swap in the new snapshot atomically.
//
// Snapshot reads are striped: instead of every query goroutine loading
// one shared atomic pointer — a single cache line bouncing between all
// cores under load — the current snapshot is mirrored into GOMAXPROCS
// padded slots, and each reader picks a slot from a cheap per-goroutine
// hash. Writers refresh every slot (after the authoritative pointer)
// before returning, so a publisher still reads its own write; a
// concurrent reader can observe the previous snapshot only during the
// same window in which it could have loaded the old pointer anyway, and
// each slot moves strictly forward because writers are serialized.
//
// With a snapshot directory, every publish persists the histogram
// through the binary wire format (atomic tmp+rename), and OpenRegistry
// reloads the directory at startup — a restart serves the same summaries
// it served before.
type Registry struct {
	mu   sync.Mutex // serializes writers
	snap atomic.Pointer[Snapshot]
	// stripes are the padded per-core read slots; nil = single-pointer
	// mode (reads fall back to snap). Length is a power of two.
	stripes []snapSlot
	dir     string // "" = in-memory only
}

// snapSlot is one padded snapshot mirror: the pointer plus enough
// padding that adjacent slots never share a cache line (128 bytes covers
// the adjacent-line prefetcher on current x86 parts too).
type snapSlot struct {
	p atomic.Pointer[Snapshot]
	_ [120]byte
}

// NewRegistry returns an empty in-memory registry with one read stripe
// per core.
func NewRegistry() *Registry {
	return NewRegistryStripes(runtime.GOMAXPROCS(0))
}

// NewRegistryStripes returns an empty in-memory registry with the given
// number of read stripes (rounded up to a power of two). n <= 1 selects
// single-pointer mode — every reader loads the one authoritative
// pointer — which exists so benchmarks can measure what the striping
// buys; serving callers should use NewRegistry.
func NewRegistryStripes(n int) *Registry {
	r := &Registry{}
	empty := &Snapshot{entries: map[string]*Entry{}}
	r.snap.Store(empty)
	if n > 1 {
		size := 1
		for size < n {
			size <<= 1
		}
		r.stripes = make([]snapSlot, size)
		for i := range r.stripes {
			r.stripes[i].p.Store(empty)
		}
	}
	return r
}

// stripeIdx spreads readers across the stripe slots using the address of
// a stack local: goroutine stacks are distinct allocations, so the mixed
// high bits of a frame address approximate a per-goroutine (≈ per-core)
// id without any shared state. Any distribution is correct — a collision
// only costs sharing a slot's cache line.
func stripeIdx(mask uintptr) uintptr {
	var b byte
	h := uintptr(unsafe.Pointer(&b))
	h ^= h >> 16
	return (h >> 6) & mask
}

// OpenRegistry returns a registry persisted under dir, loading every
// *.whst / *.wh2d snapshot already there. The directory is created if
// missing. A corrupt snapshot file fails the open: refusing to start is
// safer than silently serving a poisoned registry.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: snapshot dir: %w", err)
	}
	// r.dir stays unset during the load loop so reloading a snapshot
	// doesn't immediately re-marshal and rewrite the file it came from.
	r := NewRegistry()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot dir: %w", err)
	}
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		ext := filepath.Ext(de.Name())
		if ext != ext1D && ext != ext2D {
			// Clear tmp files orphaned by a crash mid-persist.
			if strings.Contains(de.Name(), ".tmp") {
				os.Remove(filepath.Join(dir, de.Name()))
			}
			continue
		}
		name := strings.TrimSuffix(de.Name(), ext)
		if err := ValidName(name); err != nil {
			return nil, fmt.Errorf("serve: snapshot %s: %w", de.Name(), err)
		}
		b, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			return nil, fmt.Errorf("serve: snapshot %s: %w", de.Name(), err)
		}
		switch ext {
		case ext1D:
			h, err := wavelethist.UnmarshalHistogram(b)
			if err != nil {
				return nil, fmt.Errorf("serve: snapshot %s: %w", de.Name(), err)
			}
			if _, err := r.Publish(name, h); err != nil {
				return nil, err
			}
		case ext2D:
			h, err := wavelethist.UnmarshalHistogram2D(b)
			if err != nil {
				return nil, fmt.Errorf("serve: snapshot %s: %w", de.Name(), err)
			}
			if _, err := r.Publish2D(name, h); err != nil {
				return nil, err
			}
		}
	}
	r.dir = dir
	return r, nil
}

// ValidName reports whether name is usable as a histogram name: non-empty,
// at most 128 bytes, letters/digits/dot/dash/underscore only (it doubles
// as a snapshot file name).
func ValidName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("serve: invalid histogram name %q", name)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return fmt.Errorf("serve: invalid histogram name %q", name)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("serve: invalid histogram name %q", name)
	}
	return nil
}

// Snapshot returns the current immutable view. One atomic load from a
// per-core stripe; never blocks, even mid-publish.
func (r *Registry) Snapshot() *Snapshot {
	if r.stripes == nil {
		return r.snap.Load()
	}
	return r.stripes[stripeIdx(uintptr(len(r.stripes)-1))].p.Load()
}

// Version returns the current registry version. Writers and replication
// read the authoritative pointer, not a stripe, so version checks are
// never behind a concurrent publish that already returned.
func (r *Registry) Version() uint64 { return r.snap.Load().version }

// Lookup returns the current entry for name.
func (r *Registry) Lookup(name string) (*Entry, bool) {
	return r.Snapshot().Lookup(name)
}

// install makes next the current snapshot: the authoritative pointer
// first (writers, Version, replication), then every read stripe. Called
// with r.mu held, so slot values move strictly forward and a writer
// always reads its own install afterwards.
func (r *Registry) install(next *Snapshot) {
	r.snap.Store(next)
	for i := range r.stripes {
		r.stripes[i].p.Store(next)
	}
}

// Publish installs (or replaces) the named 1D histogram and returns its
// entry. Stats carry over across republishes of the same name.
func (r *Registry) Publish(name string, h *wavelethist.Histogram) (*Entry, error) {
	if h == nil {
		return nil, fmt.Errorf("serve: nil histogram")
	}
	return r.publish(name, &Entry{Name: name, H: h})
}

// Publish2D installs (or replaces) the named 2D histogram.
func (r *Registry) Publish2D(name string, h *wavelethist.Histogram2D) (*Entry, error) {
	if h == nil {
		return nil, fmt.Errorf("serve: nil histogram")
	}
	return r.publish(name, &Entry{Name: name, H2D: h})
}

func (r *Registry) publish(name string, e *Entry) (*Entry, error) {
	if err := ValidName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dir != "" {
		if err := r.persist(e); err != nil {
			return nil, err
		}
	}
	old := r.snap.Load()
	next := &Snapshot{
		version: old.version + 1,
		entries: make(map[string]*Entry, len(old.entries)+1),
	}
	for n, oe := range old.entries {
		next.entries[n] = oe
	}
	if prev, ok := old.entries[name]; ok {
		e.Stats = prev.Stats // serving counters survive republish
		if r.dir != "" && entryExt(prev) != entryExt(e) {
			os.Remove(filepath.Join(r.dir, name+entryExt(prev)))
		}
	} else {
		e.Stats = NewStats()
	}
	e.Version = next.version
	next.entries[name] = e
	r.install(next)
	return e, nil
}

// Drop removes the named histogram (and its snapshot file, if any),
// advancing the registry version. It reports whether the name existed.
func (r *Registry) Drop(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	e, ok := old.entries[name]
	if !ok {
		return false
	}
	if r.dir != "" {
		os.Remove(filepath.Join(r.dir, name+entryExt(e)))
	}
	next := &Snapshot{
		version: old.version + 1,
		entries: make(map[string]*Entry, len(old.entries)-1),
	}
	for n, oe := range old.entries {
		if n != name {
			next.entries[n] = oe
		}
	}
	r.install(next)
	return true
}

func entryExt(e *Entry) string {
	if e.Is2D() {
		return ext2D
	}
	return ext1D
}

// persist writes the entry's wire-format blob under the snapshot dir with
// an atomic tmp+rename, so a crash mid-write never leaves a torn file.
func (r *Registry) persist(e *Entry) error {
	var (
		b   []byte
		err error
	)
	if e.Is2D() {
		b, err = e.H2D.MarshalBinary()
	} else {
		b, err = e.H.MarshalBinary()
	}
	if err != nil {
		return fmt.Errorf("serve: marshal %q: %w", e.Name, err)
	}
	final := filepath.Join(r.dir, e.Name+entryExt(e))
	tmp, err := os.CreateTemp(r.dir, e.Name+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: persist %q: %w", e.Name, err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: persist %q: %w", e.Name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: persist %q: %w", e.Name, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: persist %q: %w", e.Name, err)
	}
	return nil
}
