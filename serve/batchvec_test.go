package serve

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"wavelethist"
)

func buildHist2D(t testing.TB, side int64, k int, seed uint64) *wavelethist.Histogram2D {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	n := 4000
	xs := make([]int64, n)
	ys := make([]int64, n)
	for i := range xs {
		xs[i] = rng.Int63n(side)
		ys[i] = rng.Int63n(side)
	}
	ds, err := wavelethist.NewDataset2DFromPairs(xs, ys, side, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wavelethist.Build2D(ds, wavelethist.SendV2D, wavelethist.Options{K: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res.Histogram
}

// requireBatchEq runs the same queries through the scalar reference loop
// and the public Batch dispatch and demands bit-identical results —
// estimates AND error strings.
func requireBatchEq(t *testing.T, e *Entry, queries []BatchQuery) {
	t.Helper()
	want := make([]BatchResult, len(queries))
	e.batchScalar(queries, want)
	got := make([]BatchResult, len(queries))
	e.Batch(queries, got)
	for i := range queries {
		if got[i] != want[i] {
			t.Fatalf("query %d (%+v): vectorized %+v, scalar %+v", i, queries[i], got[i], want[i])
		}
	}
}

// TestBatchVectorizedMatchesScalar pins the serve-layer dispatch contract:
// above the vecBatchMin threshold, Entry.Batch routes through the
// shared-walk executors and every result — estimate or error string —
// is bit-identical to the scalar per-query loop, across mixed op
// classes, duplicates, out-of-domain keys, degenerate ranges, and
// malformed ops.
func TestBatchVectorizedMatchesScalar(t *testing.T) {
	r := NewRegistry()
	h := buildHist(t, 150000, 1<<13, 192, 11)
	e, err := r.Publish("zipf", h)
	if err != nil {
		t.Fatal(err)
	}
	dom := h.Domain()
	rng := rand.New(rand.NewSource(11))

	t.Run("mixed", func(t *testing.T) {
		queries := make([]BatchQuery, 300)
		for i := range queries {
			switch i % 5 {
			case 0:
				queries[i] = BatchQuery{Op: "point", Key: rng.Int63n(dom)}
			case 1:
				lo := rng.Int63n(dom)
				queries[i] = BatchQuery{Op: "range", Lo: lo, Hi: lo + rng.Int63n(2000)}
			case 2: // duplicates and boundary keys
				queries[i] = BatchQuery{Op: "point", Key: []int64{0, dom - 1, 42, 42}[i%4]}
			case 3: // degenerate / clamped ranges
				queries[i] = BatchQuery{Op: "range", Lo: int64(10 - i), Hi: int64(3 - i%7)}
			default:
				queries[i] = BatchQuery{Op: "point", Key: rng.Int63n(3*dom) - dom} // often off-domain
			}
		}
		requireBatchEq(t, e, queries)
	})

	t.Run("errors", func(t *testing.T) {
		queries := make([]BatchQuery, vecBatchMin+4)
		for i := range queries {
			queries[i] = BatchQuery{Op: "point", Key: int64(i)}
		}
		queries[1] = BatchQuery{Op: "point", Key: -1}
		queries[3] = BatchQuery{Op: "point", Key: dom}
		queries[5] = BatchQuery{Op: "frobnicate"}
		queries[7] = BatchQuery{Op: ""}
		requireBatchEq(t, e, queries)
	})

	t.Run("all-invalid", func(t *testing.T) {
		queries := make([]BatchQuery, vecBatchMin)
		for i := range queries {
			queries[i] = BatchQuery{Op: "nope", Key: int64(i)}
		}
		requireBatchEq(t, e, queries)
	})
}

// TestBatchVectorizedMatchesScalar2D is the 2D analogue: cell batches
// with shared-x runs, duplicates, off-grid cells, and rectangle ranges
// (including inverted and off-grid bounds, which clamp rather than
// error).
func TestBatchVectorizedMatchesScalar2D(t *testing.T) {
	r := NewRegistry()
	h := buildHist2D(t, 64, 128, 13)
	e, err := r.Publish2D("grid", h)
	if err != nil {
		t.Fatal(err)
	}
	s := h.Side()
	rng := rand.New(rand.NewSource(13))
	queries := make([]BatchQuery, 200)
	for i := range queries {
		switch i % 4 {
		case 0:
			queries[i] = BatchQuery{Op: "point", X: rng.Int63n(s), Y: rng.Int63n(s)}
		case 1: // shared-x runs and exact duplicates
			queries[i] = BatchQuery{Op: "point", X: 7, Y: int64(i % 5)}
		case 2: // off-grid
			queries[i] = BatchQuery{Op: "point", X: rng.Int63n(2*s) - s/2, Y: rng.Int63n(2*s) - s/2}
		default: // rectangles, incl. inverted / clamped bounds
			queries[i] = BatchQuery{
				Op:  "range",
				XLo: rng.Int63n(2*s) - s/2, XHi: rng.Int63n(2*s) - s/2,
				YLo: int64(5 - i%9), YHi: rng.Int63n(s),
			}
		}
	}
	requireBatchEq(t, e, queries)
}

// TestConcurrentVectorBatchUnderUpdateLoad is the vectorized-path race
// smoke CI runs with -race: querier goroutines drive large (vectorized)
// batches straight through Entry.Batch and the registry's striped
// snapshot reads while a writer republishes patched histograms, so the
// detector sees the pooled scratch, the per-core snapshot slots, and
// snapshot swaps all interleaving.
func TestConcurrentVectorBatchUnderUpdateLoad(t *testing.T) {
	r := NewRegistry()
	base := buildHist(t, 100000, 1<<12, 128, 17)
	if _, err := r.Publish("hot", base); err != nil {
		t.Fatal(err)
	}

	queriers := runtime.GOMAXPROCS(0)
	if queriers < 4 {
		queriers = 4
	}
	const republishes = 60
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := make([]BatchQuery, 128)
			for i := range queries {
				if i%3 == 0 {
					queries[i] = BatchQuery{Op: "range", Lo: int64(i * 7), Hi: int64(i*7 + 900)}
				} else {
					queries[i] = BatchQuery{Op: "point", Key: int64((g*131 + i*17) % (1 << 12))}
				}
			}
			results := make([]BatchResult, len(queries))
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, ok := r.Lookup("hot")
				if !ok {
					t.Error("entry vanished mid-run")
					return
				}
				e.Batch(queries, results)
				for i := range results {
					if results[i].Error != "" {
						t.Errorf("query %d errored: %s", i, results[i].Error)
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < republishes; i++ {
		h := buildHist(t, 50000, 1<<12, 128, uint64(100+i))
		if _, err := r.Publish("hot", h); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if v := r.Version(); v != republishes+1 {
		t.Fatalf("registry version = %d, want %d", v, republishes+1)
	}
}

// TestRegistryStripesConsistency pins the striping contracts: a writer
// reads its own publish immediately afterwards (all stripes refreshed
// before Publish returns), every stripe count is usable, and the n<=1
// constructor degrades to the single-pointer registry.
func TestRegistryStripesConsistency(t *testing.T) {
	for _, stripes := range []int{0, 1, 2, 3, 8} {
		t.Run(fmt.Sprintf("stripes=%d", stripes), func(t *testing.T) {
			r := NewRegistryStripes(stripes)
			if stripes <= 1 && r.stripes != nil {
				t.Fatal("n<=1 should select single-pointer mode")
			}
			if stripes > 1 && len(r.stripes)&(len(r.stripes)-1) != 0 {
				t.Fatalf("stripe count %d is not a power of two", len(r.stripes))
			}
			h := buildHist(t, 20000, 1<<10, 16, 19)
			for v := 1; v <= 5; v++ {
				if _, err := r.Publish("a", h); err != nil {
					t.Fatal(err)
				}
				// Read-your-writes through every surface.
				if got := r.Snapshot().Version(); got != uint64(v) {
					t.Fatalf("Snapshot after publish %d reads version %d", v, got)
				}
				if got := r.Version(); got != uint64(v) {
					t.Fatalf("Version after publish %d = %d", v, got)
				}
				if _, ok := r.Lookup("a"); !ok {
					t.Fatal("Lookup missed own publish")
				}
				// Every stripe slot carries the fresh snapshot.
				for i := range r.stripes {
					if sv := r.stripes[i].p.Load().Version(); sv != uint64(v) {
						t.Fatalf("stripe %d at version %d after publish %d", i, sv, v)
					}
				}
			}
			if !r.Drop("a") {
				t.Fatal("drop failed")
			}
			if _, ok := r.Lookup("a"); ok {
				t.Fatal("Lookup sees dropped entry")
			}
			for i := range r.stripes {
				if _, ok := r.stripes[i].p.Load().Lookup("a"); ok {
					t.Fatalf("stripe %d still sees dropped entry", i)
				}
			}
		})
	}
}
