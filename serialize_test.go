package wavelethist

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramMarshalRoundTrip(t *testing.T) {
	ds := zipfDS(t, 20000, 1<<12)
	res, err := Build(ds, HWTopk, Options{K: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.Histogram.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 16+12*res.Histogram.K() {
		t.Errorf("serialized size = %d", len(b))
	}
	got, err := UnmarshalHistogram(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain() != res.Histogram.Domain() || got.K() != res.Histogram.K() {
		t.Fatalf("header mismatch: %d/%d vs %d/%d",
			got.Domain(), got.K(), res.Histogram.Domain(), res.Histogram.K())
	}
	// Identical query behaviour.
	for x := int64(0); x < got.Domain(); x += 97 {
		if got.PointEstimate(x) != res.Histogram.PointEstimate(x) {
			t.Fatalf("point estimate differs at %d", x)
		}
	}
	if got.RangeCount(100, 3000) != res.Histogram.RangeCount(100, 3000) {
		t.Error("range count differs after round trip")
	}
}

func TestUnmarshalHistogramCorrupt(t *testing.T) {
	ds := zipfDS(t, 1000, 1<<8)
	res, _ := Build(ds, SendV, Options{K: 5, Seed: 1})
	good, _ := res.Histogram.MarshalBinary()

	cases := [][]byte{
		nil,
		good[:10],                               // truncated header
		good[:len(good)-3],                      // truncated body
		append([]byte{9, 9, 9, 9}, good[4:]...), // bad magic
	}
	// Count larger than payload.
	big := append([]byte(nil), good...)
	big[4] = 0xFF
	cases = append(cases, big)
	// Non-power-of-two domain.
	badU := append([]byte(nil), good...)
	badU[8] = 3
	cases = append(cases, badU)
	// Trailing bytes after the declared coefficient block.
	cases = append(cases, append(append([]byte(nil), good...), 0xAB))
	// NaN and +Inf coefficient values.
	for _, bits := range []uint64{math.Float64bits(math.NaN()), math.Float64bits(math.Inf(1))} {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint64(bad[20:], bits)
		cases = append(cases, bad)
	}
	for i, b := range cases {
		if _, err := UnmarshalHistogram(b); err == nil {
			t.Errorf("case %d: corrupt histogram accepted", i)
		}
	}
}

func TestUnmarshalNeverPanicsQuick(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = UnmarshalHistogram(b)
		_, _ = UnmarshalHistogram2D(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram2DMarshalRoundTrip(t *testing.T) {
	const side = 16
	xs := make([]int64, 500)
	ys := make([]int64, 500)
	for i := range xs {
		xs[i], ys[i] = int64(i%side), int64((i*3)%side)
	}
	ds, err := NewDataset2DFromPairs(xs, ys, side, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build2D(ds, SendV2D, Options{K: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.Histogram.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalHistogram2D(b)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x < side; x++ {
		for y := int64(0); y < side; y++ {
			if math.Abs(got.PointEstimate(x, y)-res.Histogram.PointEstimate(x, y)) > 1e-12 {
				t.Fatalf("2D estimate differs at (%d,%d)", x, y)
			}
		}
	}
	// Cross-format rejection.
	if _, err := UnmarshalHistogram(b); err == nil {
		t.Error("1D parser accepted 2D payload")
	}
}
